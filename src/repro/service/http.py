"""Minimal asyncio HTTP/1.1 shell around :class:`SimulationService`.

Deliberately tiny and dependency-free: ``asyncio.start_server`` plus a
hand-rolled request parser covering exactly what the service needs —
JSON bodies with ``Content-Length``, query strings, chunked responses
for the event stream, and file responses for trace artifacts.  All
service logic stays in the synchronous core; this layer only parses,
dispatches to :meth:`SimulationService.handle`, and serializes.

A background *stepper* task drives :meth:`SimulationService.step` on a
fixed cadence, so the event loop stays responsive while simulations run
in their worker processes.

Routes (see docs/service.md)::

    POST /jobs                  submit (JSON body; ?tenant=)
    GET  /jobs                  list
    GET  /jobs/<id>             status
    GET  /jobs/<id>/result      result (409 until done)
    GET  /jobs/<id>/events      events since ?since= (?stream=1 chunks
                                heartbeats until the job is terminal)
    POST /jobs/<id>/cancel      cancel
    GET  /jobs/<id>/artifact    trace artifact download
    GET  /metrics               service counters
    GET  /healthz               liveness
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.service.service import SimulationService

MAX_BODY = 4 * 1024 * 1024
_REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
            404: "Not Found", 408: "Request Timeout",
            409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error"}


#: Listening sockets every forked child must close immediately: a
#: simulation worker forked while the server is bound would otherwise
#: inherit the listener, and after a ``kill -9`` the orphaned worker
#: keeps the port bound, blocking the restarted server.
_INHERITED_SOCKETS: list = []
_AT_FORK_REGISTERED = False


def _close_inherited_sockets() -> None:
    for sock in _INHERITED_SOCKETS:
        # asyncio hands out TransportSocket wrappers without close();
        # shut the inherited descriptor down directly.
        try:
            fd = sock.fileno()
            if fd >= 0:
                os.close(fd)
        except OSError:
            pass


def _guard_sockets(sockets) -> None:
    global _AT_FORK_REGISTERED
    _INHERITED_SOCKETS.extend(sockets)
    if not _AT_FORK_REGISTERED and hasattr(os, "register_at_fork"):
        os.register_at_fork(after_in_child=_close_inherited_sockets)
        _AT_FORK_REGISTERED = True


def _response(status: int, payload: object,
              *, extra_headers: str = "") -> bytes:
    body = json.dumps(payload).encode()
    reason = _REASONS.get(status, "OK")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra_headers}"
            "Connection: close\r\n\r\n")
    return head.encode() + body


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, dict, Optional[dict]]]:
    """Parse one request; None on EOF/garbage, raises ValueError on an
    oversized or malformed body (the caller answers 4xx)."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode().split(None, 2)
    except ValueError:
        return None
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = line.decode(errors="replace").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    if length > MAX_BODY:
        raise ValueError("body too large")
    body = None
    if length:
        raw = await reader.readexactly(length)
        body = json.loads(raw.decode())
        if not isinstance(body, dict):
            raise ValueError("body must be a JSON object")
    parsed = urlsplit(target)
    query = dict(parse_qsl(parsed.query))
    return method.upper(), parsed.path, query, body


class ServiceServer:
    """Owns the listening socket and the stepper task."""

    def __init__(self, service: SimulationService, *,
                 host: str = "127.0.0.1", port: int = 0,
                 step_interval: float = 0.05) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.step_interval = step_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._stepper: Optional[asyncio.Task] = None

    # --------------------------------------------------------- lifecycle --
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        _guard_sockets(self._server.sockets)
        self._stepper = asyncio.ensure_future(self._step_forever())

    async def _step_forever(self) -> None:
        while True:
            self.service.step()
            await asyncio.sleep(self.step_interval)

    async def stop(self) -> None:
        if self._stepper is not None:
            self._stepper.cancel()
            try:
                await self._stepper
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            for sock in self._server.sockets:
                if sock in _INHERITED_SOCKETS:
                    _INHERITED_SOCKETS.remove(sock)
            self._server.close()
            await self._server.wait_closed()
        self.service.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # --------------------------------------------------------- connection --
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await _read_request(reader)
            except (ValueError, json.JSONDecodeError,
                    asyncio.IncompleteReadError) as exc:
                writer.write(_response(400, {"error": str(exc)}))
                return
            if request is None:
                return
            method, path, query, body = request
            if (method == "GET" and path.rstrip("/").endswith("/events")
                    and query.get("stream")):
                await self._stream_events(writer, path, query)
                return
            status, payload = self.service.handle(method, path, query, body)
            if isinstance(payload, Path):
                await self._send_file(writer, payload)
            else:
                writer.write(_response(status, payload))
        except (ConnectionError, BrokenPipeError):
            pass
        except Exception as exc:      # noqa: BLE001 — never kill the server
            try:
                writer.write(_response(500, {"error": repr(exc)}))
            except (ConnectionError, BrokenPipeError):
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    async def _send_file(self, writer: asyncio.StreamWriter,
                         path: Path) -> None:
        data = path.read_bytes()
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/octet-stream\r\n"
                f"Content-Disposition: attachment; "
                f"filename=\"{path.name}\"\r\n"
                f"Content-Length: {len(data)}\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode() + data)

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             path: str, query: dict) -> None:
        """Chunked JSONL heartbeat stream until the job is terminal."""
        job_id = [part for part in path.split("/") if part][1]
        job = self.service.jobs.get(job_id)
        if job is None:
            writer.write(_response(404, {"error": f"no such job {job_id!r}"}))
            return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/jsonl\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        since = int(query.get("since", 0))
        while True:
            events = job.events_since(since)
            for event in events:
                since = event["seq"]
                chunk = (json.dumps(event, sort_keys=True) + "\n").encode()
                writer.write(f"{len(chunk):x}\r\n".encode()
                             + chunk + b"\r\n")
            await writer.drain()
            if job.terminal:
                break
            await asyncio.sleep(self.step_interval)
        writer.write(b"0\r\n\r\n")


async def run_server(service: SimulationService, *, host: str = "127.0.0.1",
                     port: int = 0, ready=None) -> None:
    """Start and serve until cancelled; ``ready(server)`` is called once
    the socket is bound (the CLI prints the port there)."""
    server = ServiceServer(service, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
