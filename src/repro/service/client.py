"""Clients for the simulation job service.

Two interchangeable clients behind one surface:

* :class:`InProcessClient` — wraps a :class:`SimulationService` object
  directly (no sockets).  Unit tests and embedders use this; it drives
  ``service.step()`` itself while waiting, so nothing else has to.
* :class:`ServiceClient` — stdlib ``http.client`` against a running
  server.  The CLI ``submit/status/cancel/fetch`` subcommands and the
  CI smoke test use this.

Both expose: ``submit(body) -> job dict``, ``status(job_id)``,
``result(job_id)``, ``cancel(job_id)``, ``events(job_id, since=0)``,
``fetch_artifact(job_id) -> bytes``, ``metrics()``, and
``wait(job_id, timeout=...) -> terminal job dict``.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, Optional
from urllib.parse import urlencode


class ServiceError(RuntimeError):
    """Any non-2xx service answer; carries the HTTP status."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("error", f"HTTP {status}"))
        self.status = status
        self.payload = payload


class Backpressure(ServiceError):
    """HTTP 429 — the queue refused the submission; retry later."""


def _raise_for(status: int, payload: dict) -> None:
    if status == 429:
        raise Backpressure(status, payload)
    if status >= 400:
        raise ServiceError(status, payload)


class _ClientBase:
    """Shared convenience methods over the raw request primitive."""

    def _request(self, method: str, path: str,
                 query: Optional[Dict[str, str]] = None,
                 body: Optional[dict] = None):
        raise NotImplementedError

    def submit(self, body: dict, *, tenant: str = "default") -> dict:
        status, payload = self._request("POST", "/jobs",
                                        {"tenant": tenant}, body)
        _raise_for(status, payload)
        return payload

    def status(self, job_id: str) -> dict:
        status, payload = self._request("GET", f"/jobs/{job_id}")
        _raise_for(status, payload)
        return payload

    def result(self, job_id: str) -> dict:
        status, payload = self._request("GET", f"/jobs/{job_id}/result")
        _raise_for(status, payload)
        return payload

    def cancel(self, job_id: str) -> dict:
        status, payload = self._request("POST", f"/jobs/{job_id}/cancel")
        _raise_for(status, payload)
        return payload

    def events(self, job_id: str, *, since: int = 0) -> dict:
        status, payload = self._request(
            "GET", f"/jobs/{job_id}/events", {"since": str(since)})
        _raise_for(status, payload)
        return payload

    def jobs(self, *, tenant: Optional[str] = None) -> list:
        query = {"for_tenant": tenant} if tenant else None
        status, payload = self._request("GET", "/jobs", query)
        _raise_for(status, payload)
        return payload["jobs"]

    def metrics(self) -> dict:
        status, payload = self._request("GET", "/metrics")
        _raise_for(status, payload)
        return payload

    def healthz(self) -> dict:
        status, payload = self._request("GET", "/healthz")
        _raise_for(status, payload)
        return payload

    # --------------------------------------------------------- composite --
    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll_interval: float = 0.1) -> dict:
        """Block until ``job_id`` is terminal; returns the final record."""
        deadline = time.time() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.time() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:.0f}s")
            self._idle(poll_interval)

    def watch(self, job_id: str, *, timeout: float = 300.0,
              poll_interval: float = 0.2) -> Iterator[dict]:
        """Yield events (heartbeats + state changes) until terminal."""
        deadline = time.time() + timeout
        since = 0
        while True:
            answer = self.events(job_id, since=since)
            for event in answer["events"]:
                since = event["seq"]
                yield event
            if answer["state"] in ("done", "failed", "cancelled"):
                return
            if time.time() > deadline:
                raise TimeoutError(f"job {job_id} outlived the watch")
            self._idle(poll_interval)

    def _idle(self, seconds: float) -> None:
        time.sleep(seconds)


class InProcessClient(_ClientBase):
    """Drive a :class:`SimulationService` with no network at all."""

    def __init__(self, service) -> None:
        self.service = service

    def _request(self, method, path, query=None, body=None):
        status, payload = self.service.handle(method, path,
                                              dict(query or {}), body)
        if not isinstance(payload, (dict, list)):
            # Artifact path: materialize like the HTTP layer would.
            return status, {"artifact_bytes": payload.read_bytes().hex()}
        return status, payload

    def fetch_artifact(self, job_id: str) -> bytes:
        status, payload = self._request("GET", f"/jobs/{job_id}/artifact")
        _raise_for(status, payload if isinstance(payload, dict) else {})
        return bytes.fromhex(payload["artifact_bytes"])

    def _idle(self, seconds: float) -> None:
        # Waiting *is* driving: the in-process service has no stepper
        # task, so the client advances it instead of sleeping.
        self.service.step()
        time.sleep(min(seconds, 0.02))


class ServiceClient(_ClientBase):
    """Talk to a served instance over HTTP (stdlib ``http.client``)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8421,
                 *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method, path, query=None, body=None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            target = path
            if query:
                target = f"{path}?{urlencode(query)}"
            headers = {}
            data = None
            if body is not None:
                data = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, target, body=data, headers=headers)
            answer = conn.getresponse()
            raw = answer.read()
            if answer.getheader("Content-Type") == "application/octet-stream":
                return answer.status, raw
            try:
                payload = json.loads(raw.decode() or "{}")
            except json.JSONDecodeError:
                payload = {"error": raw.decode(errors="replace")}
            return answer.status, payload
        finally:
            conn.close()

    def fetch_artifact(self, job_id: str) -> bytes:
        status, payload = self._request("GET", f"/jobs/{job_id}/artifact")
        if isinstance(payload, bytes):
            return payload
        _raise_for(status, payload)
        raise ServiceError(status, {"error": "expected an artifact body"})

    def wait_until_up(self, *, timeout: float = 10.0) -> dict:
        """Poll /healthz until the server answers (startup race helper)."""
        deadline = time.time() + timeout
        while True:
            try:
                return self.healthz()
            except (ConnectionError, OSError, ServiceError):
                if time.time() > deadline:
                    raise TimeoutError(
                        f"server at {self.host}:{self.port} never came up")
                time.sleep(0.1)
