"""Crash-safe job journal: append-only JSONL with fsync'd transitions.

Every job state transition is one line::

    {"job": "j-000001", "state": "pending", "record": {...full job...}}
    {"job": "j-000001", "state": "running", "t": 1722.5}
    {"job": "j-000001", "state": "done", "t": 1724.1, ...}

The first line for a job carries the full submission record (tenant,
kind, canonical payload, key); later lines are deltas.  Appends are
flushed and ``os.fsync``'d before the service acts on the transition,
so after a ``kill -9`` the journal never *under*-reports: a job may be
re-run (its execution was in flight) but is never lost, and a terminal
state is never forgotten.

:func:`JobJournal.replay` folds the lines back into job records,
tolerating a torn final line (the one partial write a crash can leave).
On startup the service compacts: terminal jobs beyond a keep-bound are
dropped and the file is rewritten via ``os.replace``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Optional

from repro.service.jobs import TERMINAL_STATES


class JobJournal:
    """Append-only JSONL journal for job state transitions."""

    def __init__(self, path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        #: Torn trailing lines dropped by the last replay (diagnostic).
        self.torn_lines = 0

    # ------------------------------------------------------------- write --
    def append(self, job_id: str, state: str, **extra) -> None:
        """Durably record that ``job_id`` entered ``state``."""
        line = {"job": job_id, "state": state, "t": round(time.time(), 3)}
        line.update(extra)
        self._fh.write(json.dumps(line, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def submitted(self, job) -> None:
        """First line for a job: the full record, enough to re-create it."""
        self.append(job.id, job.state, record={
            "kind": job.kind, "key": job.key, "tenant": job.tenant,
            "payload": job.payload, "cost": job.cost,
            "timeout": job.timeout, "parent": job.parent,
            "shared_with": job.shared_with, "dedupe": job.dedupe,
            "artifact": job.artifact,
            "submitted_at": job.submitted_at,
        })

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    # -------------------------------------------------------------- read --
    @staticmethod
    def replay(path) -> Dict[str, dict]:
        """Fold a journal into ``{job_id: folded}`` submission order.

        Each folded record is the submission ``record`` plus the latest
        ``state`` (and any terminal extras such as ``error``).  Lines for
        unknown jobs (submission line itself torn away — cannot happen
        with fsync'd appends, but tolerated) and the one possibly-partial
        final line are skipped, never fatal.
        """
        path = Path(path)
        jobs: Dict[str, dict] = {}
        if not path.exists():
            return jobs
        with open(path, encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except json.JSONDecodeError:
                    continue            # torn tail of a crashed append
                job_id = line.get("job")
                state = line.get("state")
                if not job_id or not state:
                    continue
                if job_id not in jobs:
                    record = line.get("record")
                    if not isinstance(record, dict):
                        continue        # delta for a job we never saw
                    jobs[job_id] = dict(record, id=job_id, state=state)
                else:
                    folded = jobs[job_id]
                    folded["state"] = state
                    for extra in ("error", "result_key", "artifact",
                                  "dedupe", "shared_with", "started_at"):
                        if extra in line:
                            folded[extra] = line[extra]
        return jobs

    # --------------------------------------------------------- compaction --
    def compact(self, *, keep_terminal: int = 256) -> Dict[str, dict]:
        """Rewrite the journal keeping every non-terminal job and the
        most recent ``keep_terminal`` terminal ones; returns the replay.

        Called on startup, before resuming: bounds journal growth across
        restarts without ever dropping work the server still owes.
        """
        before = self.path.stat().st_size if self.path.exists() else 0
        jobs = self.replay(self.path)
        live = {job_id: folded for job_id, folded in jobs.items()
                if folded["state"] not in TERMINAL_STATES}
        terminal = [(job_id, folded) for job_id, folded in jobs.items()
                    if folded["state"] in TERMINAL_STATES]
        kept = dict(terminal[-keep_terminal:] if keep_terminal else [])
        kept.update(live)

        self._fh.close()
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for job_id, folded in kept.items():
                state = folded["state"]
                record = {key: folded.get(key) for key in
                          ("kind", "key", "tenant", "payload", "cost",
                           "timeout", "parent", "shared_with", "dedupe",
                           "artifact", "submitted_at")}
                line = {"job": job_id, "state": state, "record": record}
                for extra in ("error", "result_key", "started_at"):
                    if folded.get(extra) is not None:
                        line[extra] = folded[extra]
                fh.write(json.dumps(line, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.compacted_bytes = max(0, before - self.path.stat().st_size)
        return kept
