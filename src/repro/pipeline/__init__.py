"""Cycle-level out-of-order pipeline: FUs, LSQ, ROB, processor top level."""

from repro.pipeline.fu import FUPool
from repro.pipeline.lsq import FORWARD_LATENCY, LoadStoreQueue, LSQEntry
from repro.pipeline.processor import Processor, build_iq
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.smt import SMTProcessor

__all__ = ["FORWARD_LATENCY", "FUPool", "LSQEntry", "LoadStoreQueue",
           "Processor", "ReorderBuffer", "SMTProcessor", "build_iq"]
