"""Simultaneous multithreading processor (the paper's section-7 study).

"By scheduling across multiple threads, an SMT processor may obtain even
larger benefits out of increased IQ sizes.  Unlike other prescheduling
schemes, the dynamic inter-chain scheduling of our segmented IQ should
allow chains from independent threads to exploit thread-level parallelism
effectively."

Sharing model (one common SMT design point):

* shared: instruction queue (and its chains), function units, LSQ, caches;
* per-thread: front end (fetch state, branch predictor, BTB), rename map,
  reorder buffer (an equal slice of the ROB capacity);
* fetch: ICOUNT-style — each cycle the thread with the fewest in-flight
  instructions fetches at full width;
* dispatch/commit: shared bandwidth, least-loaded-first / round-robin.

Threads run independent programs in disjoint address spaces: each thread's
data addresses are offset by 256 MB and code addresses by 16 MB, so cache
interference is real but no false architectural sharing occurs, and the
LSQ's same-address disambiguation never crosses threads.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.common.errors import ConfigurationError, DeadlockError
from repro.common.events import EventQueue
from repro.common.params import ProcessorParams
from repro.common.stats import StatGroup
from repro.core.iq_base import Operand
from repro.frontend.fetch import FrontEnd
from repro.isa.instruction import DynInst
from repro.isa.opcodes import NUM_REGS, OpClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.fu import FUPool
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.processor import build_iq
from repro.pipeline.rob import ReorderBuffer

#: Per-thread address-space offsets.
DATA_SPACE_BYTES = 256 * 1024 * 1024
CODE_SPACE_BYTES = 16 * 1024 * 1024


def _thread_stream(stream: Iterator[DynInst], thread: int,
                   data_offset: int) -> Iterator[DynInst]:
    """Tag a dynamic stream with its hardware thread and shift its data
    addresses into the thread's private region."""
    for inst in stream:
        inst.thread = thread
        if inst.mem_addr is not None:
            inst.mem_addr += data_offset
        yield inst


class SMTProcessor:
    """N hardware threads sharing one out-of-order back end."""

    def __init__(self, params: ProcessorParams,
                 streams: Sequence[Iterator[DynInst]],
                 stats: Optional[StatGroup] = None) -> None:
        params.validate()
        if not streams:
            raise ConfigurationError("SMTProcessor needs at least one stream")
        if params.clusters > 1:
            raise ConfigurationError(
                "SMTProcessor does not support clustering yet")
        self.params = params
        self.num_threads = len(streams)
        self.stats = stats if stats is not None else StatGroup()
        self.events = EventQueue()
        self.memory = MemoryHierarchy(params.memory, self.events, self.stats)
        self.fu_pool = FUPool(params.fu_counts, self.stats)
        self.iq = build_iq(params, self.stats)
        self.lsq = LoadStoreQueue(params.effective_lsq_size, self.memory,
                                  self.events, self.stats,
                                  iq=self.iq, fu_pool=self.fu_pool,
                                  policy=params.mem_dep_policy)

        self.frontends: List[FrontEnd] = []
        self.robs: List[ReorderBuffer] = []
        self._renamers: List[Dict[int, DynInst]] = []
        rob_slice = max(8, params.rob_size // self.num_threads)
        for thread, stream in enumerate(streams):
            wrapped = _thread_stream(stream, thread,
                                     thread * DATA_SPACE_BYTES)
            frontend = FrontEnd(params, wrapped, self.memory.l1i,
                                self.events, self.stats)
            frontend.code_base = thread * CODE_SPACE_BYTES
            self.frontends.append(frontend)
            self.robs.append(ReorderBuffer(rob_slice, self.stats))
            self._renamers.append({})

        self.cycle = 0
        self.committed = 0
        self.committed_per_thread = [0] * self.num_threads
        self._halted = [False] * self.num_threads
        self._global_seq = 0
        self._last_commit_cycle = 0
        self._commit_rotor = 0
        self.stat_cycles = self.stats.counter("cycles")
        self.stat_committed = self.stats.counter("committed")
        self._thread_committed = [
            self.stats.counter(f"thread{t}.committed")
            for t in range(self.num_threads)]

    # --------------------------------------------------------------- run --
    def _thread_done(self, thread: int) -> bool:
        return (self._halted[thread]
                or (self.frontends[thread].drained
                    and len(self.robs[thread]) == 0))

    @property
    def done(self) -> bool:
        return all(self._thread_done(t) for t in range(self.num_threads))

    @property
    def ipc(self) -> float:
        return self.committed / self.cycle if self.cycle else 0.0

    def thread_ipc(self, thread: int) -> float:
        return (self.committed_per_thread[thread] / self.cycle
                if self.cycle else 0.0)

    def warm_code(self, programs: Sequence) -> None:
        """Pre-install every thread's code footprint (see Processor)."""
        from repro.frontend.fetch import INST_BYTES
        line = self.params.memory.l1i.line_bytes
        for thread, program in enumerate(programs):
            base = thread * CODE_SPACE_BYTES
            for byte_addr in range(base,
                                   base + len(program) * INST_BYTES, line):
                self.memory.l1i.warm_line(byte_addr)
                self.memory.l2.warm_line(byte_addr)

    def warm_data(self, programs: Sequence, threads: Optional[Sequence[int]] = None) -> None:
        """Pre-install chosen threads' data segments in the L2."""
        line = self.params.memory.l2.line_bytes
        for thread, program in enumerate(programs):
            if threads is not None and thread not in threads:
                continue
            base = thread * DATA_SPACE_BYTES
            for segment in program.segments.values():
                start = base + segment.base
                for byte_addr in range(start, start + segment.bytes, line):
                    self.memory.l2.warm_line(byte_addr)

    def run(self, max_cycles: Optional[int] = None) -> StatGroup:
        limit = max_cycles if max_cycles is not None else 1 << 62
        while not self.done and self.cycle < limit:
            self.step()
        self.stat_committed.value = self.committed
        return self.stats

    def step(self) -> None:
        now = self.cycle
        self.events.advance_to(now)
        self._commit(now)
        self.lsq.cycle(now)
        self._issue(now)
        self.iq.in_flight = len(self.events)
        self.iq.last_commit_cycle = self._last_commit_cycle
        self.iq.cycle(now)
        self._dispatch(now)
        self._fetch(now)
        self.cycle += 1
        self.stat_cycles.inc()
        if now - self._last_commit_cycle > self.params.watchdog_cycles:
            raise DeadlockError(
                f"SMT: no commit for {self.params.watchdog_cycles} cycles "
                f"at cycle {now}")

    # ------------------------------------------------------------- fetch --
    def _fetch(self, now: int) -> None:
        """ICOUNT: the least-loaded unfinished thread fetches this cycle."""
        candidates = [t for t in range(self.num_threads)
                      if not self._thread_done(t)]
        if not candidates:
            return
        candidates.sort(key=lambda t: (len(self.robs[t]), t))
        self.frontends[candidates[0]].cycle(now)

    # ------------------------------------------------------------ commit --
    def _commit(self, now: int) -> None:
        budget = self.params.commit_width
        for offset in range(self.num_threads):
            if budget <= 0:
                break
            thread = (self._commit_rotor + offset) % self.num_threads
            rob = self.robs[thread]
            while budget > 0:
                inst = rob.head()
                if (inst is None or inst.completed_cycle < 0
                        or inst.completed_cycle > now):
                    break
                rob.commit_head()
                inst.committed_cycle = now
                if inst.is_mem:
                    self.lsq.commit(inst, now)
                if inst.static.is_halt:
                    self._halted[thread] = True
                budget -= 1
                self.committed += 1
                self.committed_per_thread[thread] += 1
                self._thread_committed[thread].inc()
                self._last_commit_cycle = now
        self._commit_rotor = (self._commit_rotor + 1) % self.num_threads

    # ------------------------------------------------------------- issue --
    def _issue(self, now: int) -> None:
        def acquire_fu(inst: DynInst) -> bool:
            return self.fu_pool.try_issue(inst, now)

        for entry in self.iq.select_issue(now, acquire_fu):
            self._start_execution(entry.inst, now)

    def _start_execution(self, inst: DynInst, now: int) -> None:
        inst.issued_cycle = now
        if inst.is_mem:
            ea_cycle = now + 1
            self.events.schedule_at(
                ea_cycle, lambda: self.lsq.address_ready(inst, ea_cycle))
            return
        latency = inst.static.info.latency
        done = now + latency
        inst.set_value_ready(done)
        self.events.schedule_at(done, lambda: self._complete(inst, done))

    def _complete(self, inst: DynInst, cycle: int) -> None:
        inst.completed_cycle = cycle
        self.iq.on_writeback(inst, cycle)
        if inst.mispredicted and inst.is_branch:
            self.frontends[inst.thread].branch_resolved(inst, cycle)

    # ---------------------------------------------------------- dispatch --
    def _dispatch(self, now: int) -> None:
        """Shared dispatch bandwidth, least-loaded thread first."""
        if now < self.lsq.violation_flush_until:
            return      # squash penalty after a memory-order violation
        budget = self.params.dispatch_width
        order = sorted(range(self.num_threads),
                       key=lambda t: (len(self.robs[t]), t))
        for thread in order:
            while budget > 0:
                inst = self.frontends[thread].peek_dispatchable(now)
                if inst is None or not self._try_dispatch(thread, inst, now):
                    break
                self.frontends[thread].pop_dispatchable(now)
                budget -= 1

    def _try_dispatch(self, thread: int, inst: DynInst, now: int) -> bool:
        rob = self.robs[thread]
        if not rob.has_space():
            return False
        op_class = inst.static.info.op_class
        # Re-sequence into a global age order: the shared queues (IQ, LSQ)
        # break ties by seq, and per-thread program order is preserved
        # because dispatch follows fetch order within a thread.
        inst.seq = self._global_seq
        self._global_seq += 1

        if op_class in (OpClass.HALT, OpClass.NOP, OpClass.JUMP):
            rob.dispatch(inst)
            inst.dispatched_cycle = now
            inst.completed_cycle = now
            if inst.mispredicted and op_class is OpClass.JUMP:
                self.frontends[thread].branch_resolved(inst, now)
            return True

        if inst.is_mem and not self.lsq.has_space():
            return False
        if not self.iq.can_dispatch(inst):
            return False

        operands = self._rename(thread, inst)
        rob.dispatch(inst)
        inst.dispatched_cycle = now
        if inst.is_mem:
            data_ready, data_producer = self._store_data_operand(thread, inst)
            self.lsq.dispatch(inst, data_ready, data_producer)
        self.iq.dispatch(inst, operands, now)
        if inst.dest is not None and inst.dest != 0:
            self._renamers[thread][inst.dest] = inst
        return True

    def _rename(self, thread: int, inst: DynInst) -> List[Operand]:
        regs = inst.srcs[:1] if inst.is_mem else inst.srcs
        return [self._operand_for(thread, reg) for reg in regs]

    def _operand_for(self, thread: int, reg: int) -> Operand:
        if reg == 0:
            return Operand(reg=reg, ready_cycle=0)
        producer = self._renamers[thread].get(reg)
        if producer is None:
            return Operand(reg=reg, ready_cycle=0)
        return Operand(reg=reg, producer=producer,
                       ready_cycle=producer.value_ready_cycle)

    def _store_data_operand(self, thread: int, inst: DynInst):
        if not inst.is_store:
            return None, None
        operand = self._operand_for(thread, inst.srcs[1])
        return operand.ready_cycle, operand.producer
