"""Pipeline-tier kernel engine: batched per-cycle pipeline state.

PR 7 moved the segmented IQ's active-cycle state into a struct-of-arrays
kernel engine (:mod:`repro.core.segmented.kernels`); this module extends
the same pattern *upward* into the pipeline around the IQ.  Per-cycle
hot-path state that used to live in Python containers — today the
function-unit pool's next-free heaps and their issue/stall counters —
lives in slot-indexed parallel columns with two interchangeable
implementations:

* :class:`PyPipelineEngine`, the pure-Python reference below, and
* ``repro.core.segmented._ckernels.Pipeline``, an operation-for-operation
  C twin built by ``python -m repro.core.segmented.build``.

Backend selection reuses the segmented tier's switch
(:func:`repro.core.segmented.kernels.backend`): ``REPRO_KERNELS`` /
``--kernels`` / :func:`~repro.core.segmented.kernels.set_backend` pick
the backend for *both* tiers, and the pure-Python fallback is always
available.  The two backends are bit-identical — same cycles, same
stats, same traces — pinned by ``tests/core/test_kernels.py``.

Column layout (one heap per (FU class, cluster) pair, flattened):

``heaps[ci * clusters + cluster]``
    Min-heap of next-free cycles, one element per unit — an exact
    transliteration of the ``heapq`` discipline ``FUPool`` used, so unit
    reuse order (and therefore every stat) is unchanged.

Stat counters are bound once at construction; the C twin recognises the
compiled ``Counter`` type from its own module and increments the struct
field directly, falling back to the Python ``inc`` protocol otherwise
(the stat tier's backend is fixed at process start while the engine
backend may be forced per-run, so mixed pairings are legal).
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.core.segmented.kernels import backend as _backend

#: Matches repro.core.segmented.links.NEVER (import cycle avoidance).
NEVER = 1 << 60


class PyPipelineEngine:
    """Pure-Python reference implementation of the pipeline kernel tier."""

    kind = "py"

    __slots__ = ("_clusters", "_heaps", "_issued", "_structural",
                 "_mem_port", "issue_keys")

    def __init__(self, n_classes: int, clusters: int, counts: List[int],
                 mem_port_index: int, issued_counters, structural_counter,
                 issue_keys=None) -> None:
        self._clusters = clusters
        self._heaps = []
        for ci in range(n_classes):
            per_cluster = counts[ci] // clusters
            for _cluster in range(clusters):
                self._heaps.append([0] * per_cluster)
        self._issued = list(issued_counters)
        self._structural = structural_counter
        self._mem_port = mem_port_index
        #: opcode -> (class index, occupancy) map shared with FUPool;
        #: the Python engine never reads it (the IQ-side issue select
        #: calls back through FUPool.try_issue), but the compiled twin
        #: uses it to claim units without re-entering Python.
        self.issue_keys = issue_keys if issue_keys is not None else {}

    # -------------------------------------------------------------- ops --
    def fu_accept(self, ci: int, cluster: int, occupancy: int,
                  now: int) -> bool:
        """Claim a unit of class ``ci`` in ``cluster`` for ``occupancy``
        cycles (transliterates ``FUPool.accept``, structural stall
        included)."""
        units = self._heaps[ci * self._clusters + cluster]
        if not units or units[0] > now:
            self._structural.inc()
            return False
        heapq.heapreplace(units, now + occupancy)
        self._issued[ci].inc()
        return True

    def fu_can_accept(self, ci: int, cluster: int, now: int) -> bool:
        units = self._heaps[ci * self._clusters + cluster]
        return bool(units) and units[0] <= now

    def fu_cache_port(self, now: int) -> bool:
        """Claim a data-cache port in any cluster (transliterates
        ``FUPool.try_cache_port``: each busy cluster probed on the way
        counts one structural stall, exactly as ``accept`` did)."""
        base = self._mem_port * self._clusters
        heaps = self._heaps
        structural = self._structural
        for cluster in range(self._clusters):
            units = heaps[base + cluster]
            if not units or units[0] > now:
                structural.inc()
                continue
            heapq.heapreplace(units, now + 1)
            self._issued[self._mem_port].inc()
            return True
        return False

    def fu_next_event(self, now: int) -> int:
        """Earliest future cycle any busy unit frees up (NEVER if all
        free)."""
        earliest = NEVER
        for units in self._heaps:
            if units and now < units[0] < earliest:
                earliest = units[0]
        return earliest


def rename_kernel():
    """The fused unclustered rename loop (C), or None on the py backend.

    ``rename_operands(operand_cls, last_writer, srcs, limit)`` builds the
    dispatch-time operand list in one call; Processor._dispatch keeps the
    Python loop as the fallback twin (and for clustered configurations,
    whose bypass-penalty bookkeeping stays in Python).
    """
    if _backend() == "compiled":
        from repro.core.segmented import _ckernels
        return getattr(_ckernels, "rename_operands", None)
    return None


def make_engine(n_classes: int, clusters: int, counts: List[int],
                mem_port_index: int, issued_counters,
                structural_counter, issue_keys=None):
    """Build a pipeline engine on the active kernel backend."""
    if issue_keys is None:
        issue_keys = {}
    if _backend() == "compiled":
        from repro.core.segmented import _ckernels
        pipeline = getattr(_ckernels, "Pipeline", None)
        if pipeline is not None:
            return pipeline(n_classes, clusters, counts, mem_port_index,
                            list(issued_counters), structural_counter,
                            issue_keys)
        # Stale extension built before the pipeline tier existed: the
        # pure-Python twin is bit-identical, so fall through quietly.
    return PyPipelineEngine(n_classes, clusters, counts, mem_port_index,
                            issued_counters, structural_counter, issue_keys)
