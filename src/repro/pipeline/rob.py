"""Reorder buffer: in-order commit window (3x the IQ size, paper section 5)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from repro.common.errors import InvariantViolation
from repro.common.stats import StatGroup
from repro.isa.instruction import DynInst


class ReorderBuffer:
    """In-order retirement of completed instructions."""

    def __init__(self, size: int, stats: StatGroup) -> None:
        self.size = size
        self._entries: Deque[DynInst] = deque()
        self.stat_occupancy = stats.distribution("rob.occupancy")
        self.stat_full_stalls = stats.counter(
            "rob.full_stalls", "dispatch attempts blocked by a full ROB")

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def has_space(self) -> bool:
        return len(self._entries) < self.size

    def dispatch(self, inst: DynInst) -> None:
        inst.rob_index = len(self._entries)
        self._entries.append(inst)

    def head(self) -> Optional[DynInst]:
        return self._entries[0] if self._entries else None

    def commit_head(self) -> DynInst:
        return self._entries.popleft()

    def members(self) -> Iterator[DynInst]:
        """Iterate the buffered instructions, oldest first."""
        return iter(self._entries)

    def check(self, now: int) -> None:
        """Invariants: bounded occupancy, strict program order, and no
        already-committed instruction still buffered."""
        if len(self._entries) > self.size:
            raise InvariantViolation(
                f"ROB holds {len(self._entries)} > size {self.size} "
                f"at cycle {now}")
        previous = -1
        for inst in self._entries:
            if inst.seq <= previous:
                raise InvariantViolation(
                    f"ROB out of program order at cycle {now}: "
                    f"#{inst.seq} follows #{previous}")
            if inst.committed_cycle >= 0:
                raise InvariantViolation(
                    f"ROB still holds committed instruction #{inst.seq} "
                    f"at cycle {now}")
            previous = inst.seq

    def __len__(self) -> int:
        return len(self._entries)
