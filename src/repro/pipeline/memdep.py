"""Store-set memory dependence prediction (Chrysos & Emer, ISCA 1998).

The paper's LSQ is conservative: a load waits until every earlier store's
address is known.  Section 5 notes that Michaud & Seznec "illustrate how a
similar scheme can be augmented to enforce predicted memory dependences
using store sets"; this module provides that predictor so the LSQ can run
in three modes (see :class:`~repro.pipeline.lsq.LoadStoreQueue`):

* ``conservative`` — the paper's rule;
* ``oracle``       — perfect disambiguation (the functional simulator
  knows every address), an upper bound;
* ``store_sets``   — loads issue speculatively unless the predictor says
  they depend on an in-flight store; a mis-speculation (an earlier store
  resolving to the same address after the load issued) trains the
  predictor and charges a squash-like flush penalty.

Structures follow the original proposal: a Store Set ID Table (SSIT)
indexed by instruction PC and a Last Fetched Store Table (LFST) indexed by
store-set ID.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.stats import StatGroup


class StoreSetPredictor:
    """SSIT + LFST with the store-set merge rule."""

    def __init__(self, stats: StatGroup, *, table_size: int = 4096) -> None:
        self.table_size = table_size
        self._ssit: Dict[int, int] = {}      # pc -> store set id
        self._lfst: Dict[int, object] = {}   # ssid -> in-flight store entry
        self._next_ssid = 0
        self.stat_violations = stats.counter(
            "memdep.violations", "loads that issued past a conflicting store")
        self.stat_predicted_waits = stats.counter(
            "memdep.predicted_waits", "loads held back by a predicted dependence")
        self.stat_merges = stats.counter("memdep.set_merges")

    def _index(self, pc: int) -> int:
        return pc % self.table_size

    # ---------------------------------------------------------- predict --
    def predicted_store(self, load_pc: int):
        """The in-flight store this load should wait for, or None."""
        ssid = self._ssit.get(self._index(load_pc))
        if ssid is None:
            return None
        store = self._lfst.get(ssid)
        if store is not None:
            self.stat_predicted_waits.inc()
        return store

    def store_fetched(self, store_pc: int, entry) -> None:
        """A store entered the window; it becomes its set's last store."""
        ssid = self._ssit.get(self._index(store_pc))
        if ssid is not None:
            self._lfst[ssid] = entry

    def store_left(self, store_pc: int, entry) -> None:
        """The store completed/committed; clear it from the LFST."""
        ssid = self._ssit.get(self._index(store_pc))
        if ssid is not None and self._lfst.get(ssid) is entry:
            del self._lfst[ssid]

    # ------------------------------------------------------------ train --
    def record_violation(self, load_pc: int, store_pc: int) -> None:
        """Assign the load and store to a common store set."""
        self.stat_violations.inc()
        load_index = self._index(load_pc)
        store_index = self._index(store_pc)
        load_ssid = self._ssit.get(load_index)
        store_ssid = self._ssit.get(store_index)
        if load_ssid is None and store_ssid is None:
            ssid = self._next_ssid
            self._next_ssid += 1
            self._ssit[load_index] = ssid
            self._ssit[store_index] = ssid
        elif load_ssid is None:
            self._ssit[load_index] = store_ssid
        elif store_ssid is None:
            self._ssit[store_index] = load_ssid
        elif load_ssid != store_ssid:
            # Merge rule: both move to the smaller-numbered set.
            winner = min(load_ssid, store_ssid)
            self._ssit[load_index] = winner
            self._ssit[store_index] = winner
            self.stat_merges.inc()
