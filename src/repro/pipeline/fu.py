"""Function-unit pool.

Table 1 gives 8 units of each class.  All units are fully pipelined (accept
one operation per cycle) except integer divide, FP divide, and FP sqrt,
which occupy their unit for the full latency.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from repro.common.stats import StatGroup
from repro.isa.instruction import DynInst
from repro.isa.opcodes import FUClass, op_info


class FUPool:
    """Tracks when each function unit can next accept an operation.

    With ``clusters > 1`` (the paper's section-7 horizontal clustering),
    each class's units are split evenly across clusters and an instruction
    may only use its own cluster's units.
    """

    def __init__(self, fu_counts: Dict[str, int], stats: StatGroup,
                 clusters: int = 1) -> None:
        self.clusters = max(1, clusters)
        # Per (class, cluster): heap of next-free cycles, one per unit.
        self._units: Dict[tuple, List[int]] = {}
        self._classes = []
        for fu_class in FUClass:
            if fu_class is FUClass.NONE:
                continue
            self._classes.append(fu_class)
            count = fu_counts.get(fu_class.value, 0)
            per_cluster = count // self.clusters
            for cluster in range(self.clusters):
                self._units[(fu_class, cluster)] = [0] * per_cluster
        self._stat_issued = {
            fu_class: stats.counter(f"fu.{fu_class.value}.ops")
            for fu_class in self._classes}
        self._stat_structural = stats.counter(
            "fu.structural_stalls", "issue attempts blocked by busy units")

    @staticmethod
    def issue_class(inst: DynInst) -> FUClass:
        """FU class consumed at IQ issue time.

        Memory operations issue their *effective-address calculation*, an
        ordinary integer add (paper section 5); the cache port (MEM_PORT) is
        consumed later by the LSQ when the access goes to the data cache.
        """
        if inst.is_mem:
            return FUClass.INT_ALU
        return inst.static.info.fu_class

    def can_accept(self, fu_class: FUClass, now: int,
                   cluster: int = 0) -> bool:
        units = self._units.get((fu_class, cluster))
        return bool(units) and units[0] <= now

    def accept(self, fu_class: FUClass, now: int, occupancy: int = 1,
               cluster: int = 0) -> bool:
        """Claim a ``fu_class`` unit in ``cluster`` for ``occupancy`` cycles."""
        units = self._units.get((fu_class, cluster))
        if not units or units[0] > now:
            self._stat_structural.inc()
            return False
        heapq.heapreplace(units, now + occupancy)
        self._stat_issued[fu_class].inc()
        return True

    def next_event_cycle(self, now: int) -> int:
        """Earliest future cycle a currently-busy unit frees up (NEVER if
        every unit is already free).

        Informational: the skip-ahead probe treats any cycle with ready
        instructions as active (FU-blocked retries count structural
        stalls per cycle), so unit availability never gates a skip on its
        own — but every timed component answers the same question.
        """
        earliest = 1 << 60
        for units in self._units.values():
            if units and now < units[0] < earliest:
                earliest = units[0]
        return earliest

    def try_issue(self, inst: DynInst, now: int) -> bool:
        """Claim the unit an IQ issue of ``inst`` needs.

        Non-pipelined operations occupy their unit for the full latency;
        pipelined ones free it next cycle.  HALT/NOP consume nothing.
        (Inlined equivalent of ``accept(issue_class(inst), ...)`` — this
        runs once per issued instruction.)
        """
        info = inst.static.info
        fu_class = info.fu_class
        if fu_class is FUClass.NONE:
            return True
        if inst.is_mem:
            fu_class = FUClass.INT_ALU         # EA calc is a pipelined add
            occupancy = 1
        else:
            occupancy = 1 if info.pipelined else info.latency
        units = self._units.get((fu_class, inst.cluster))
        if not units or units[0] > now:
            self._stat_structural.inc()
            return False
        heapq.heapreplace(units, now + occupancy)
        self._stat_issued[fu_class].inc()
        return True

    def try_cache_port(self, now: int) -> bool:
        """Claim a data-cache read/write port for one cycle (LSQ side).

        The cache is shared: any cluster's port will do."""
        for cluster in range(self.clusters):
            if self.accept(FUClass.MEM_PORT, now, 1, cluster):
                return True
        return False
