"""Function-unit pool.

Table 1 gives 8 units of each class.  All units are fully pipelined (accept
one operation per cycle) except integer divide, FP divide, and FP sqrt,
which occupy their unit for the full latency.

The per-unit next-free heaps live in the pipeline kernel engine
(:mod:`repro.pipeline.kernels`), which has a compiled twin behind the
``REPRO_KERNELS`` switch; this class keeps the instruction-facing policy
(class selection, occupancy) and delegates the heap discipline.
"""

from __future__ import annotations

from typing import Dict

from repro.common.stats import StatGroup
from repro.isa.instruction import DynInst
from repro.isa.opcodes import FUClass, op_info
from repro.pipeline import kernels as _pkernels

#: All schedulable FU classes, in FUClass declaration order (the engine's
#: class-index space).
_CLASSES = [fu_class for fu_class in FUClass if fu_class is not FUClass.NONE]
_CLASS_INDEX = {fu_class: index for index, fu_class in enumerate(_CLASSES)}


class FUPool:
    """Tracks when each function unit can next accept an operation.

    With ``clusters > 1`` (the paper's section-7 horizontal clustering),
    each class's units are split evenly across clusters and an instruction
    may only use its own cluster's units.
    """

    def __init__(self, fu_counts: Dict[str, int], stats: StatGroup,
                 clusters: int = 1) -> None:
        self.clusters = max(1, clusters)
        counts = [fu_counts.get(fu_class.value, 0) for fu_class in _CLASSES]
        issued = [stats.counter(f"fu.{fu_class.value}.ops")
                  for fu_class in _CLASSES]
        self._stat_structural = stats.counter(
            "fu.structural_stalls", "issue attempts blocked by busy units")
        #: opcode -> (engine class index, occupancy), resolved lazily
        #: (-1 occupancy marks the class-NONE "consumes nothing" case).
        #: Shared with the engine so a fused issue select can claim units
        #: without re-entering Python.
        self._issue_keys: Dict = {}
        self._engine = _pkernels.make_engine(
            len(_CLASSES), self.clusters, counts,
            _CLASS_INDEX[FUClass.MEM_PORT], issued, self._stat_structural,
            self._issue_keys)

    @staticmethod
    def issue_class(inst: DynInst) -> FUClass:
        """FU class consumed at IQ issue time.

        Memory operations issue their *effective-address calculation*, an
        ordinary integer add (paper section 5); the cache port (MEM_PORT) is
        consumed later by the LSQ when the access goes to the data cache.
        """
        if inst.is_mem:
            return FUClass.INT_ALU
        return inst.static.info.fu_class

    def can_accept(self, fu_class: FUClass, now: int,
                   cluster: int = 0) -> bool:
        return self._engine.fu_can_accept(
            _CLASS_INDEX[fu_class], cluster, now)

    def accept(self, fu_class: FUClass, now: int, occupancy: int = 1,
               cluster: int = 0) -> bool:
        """Claim a ``fu_class`` unit in ``cluster`` for ``occupancy`` cycles."""
        return self._engine.fu_accept(
            _CLASS_INDEX[fu_class], cluster, occupancy, now)

    def next_event_cycle(self, now: int) -> int:
        """Earliest future cycle a currently-busy unit frees up (NEVER if
        every unit is already free).

        Informational: the skip-ahead probe treats any cycle with ready
        instructions as active (FU-blocked retries count structural
        stalls per cycle), so unit availability never gates a skip on its
        own — but every timed component answers the same question.
        """
        return self._engine.fu_next_event(now)

    def _issue_key(self, inst: DynInst):
        """(engine class index, occupancy) an issue of this opcode claims."""
        info = inst.static.info
        fu_class = info.fu_class
        if fu_class is FUClass.NONE:
            key = (0, -1)
        elif inst.is_mem:
            key = (_CLASS_INDEX[FUClass.INT_ALU], 1)   # pipelined EA add
        else:
            key = (_CLASS_INDEX[fu_class],
                   1 if info.pipelined else info.latency)
        self._issue_keys[inst.static.opcode] = key
        return key

    def try_issue(self, inst: DynInst, now: int) -> bool:
        """Claim the unit an IQ issue of ``inst`` needs.

        Non-pipelined operations occupy their unit for the full latency;
        pipelined ones free it next cycle.  HALT/NOP consume nothing.
        """
        key = self._issue_keys.get(inst.static.opcode)
        if key is None:
            key = self._issue_key(inst)
        ci, occupancy = key
        if occupancy < 0:
            return True
        return self._engine.fu_accept(ci, inst.cluster, occupancy, now)

    def try_cache_port(self, now: int) -> bool:
        """Claim a data-cache read/write port for one cycle (LSQ side).

        The cache is shared: any cluster's port will do."""
        return self._engine.fu_cache_port(now)


class FUAcquire:
    """Persistent issue-loop FU acquisition callable.

    The processor updates :attr:`now` once per cycle and hands the same
    object to ``select_issue`` every cycle.  IQ models that run their
    issue select inside a kernel engine probe :attr:`fu_engine` (via
    ``getattr``) so the compiled backend can claim units without
    re-entering Python; everything else — other IQ models, tests passing
    plain lambdas — just calls it.
    """

    __slots__ = ("_pool", "now")

    def __init__(self, pool: FUPool) -> None:
        self._pool = pool
        self.now = 0

    @property
    def fu_engine(self):
        return self._pool._engine

    def __call__(self, inst: DynInst) -> bool:
        return self._pool.try_issue(inst, self.now)
