"""Top-level cycle-accurate out-of-order processor model.

Per-cycle stage order (see DESIGN.md section 7): drain memory events,
commit, LSQ memory issue, IQ issue, IQ internal maintenance (promotion for
the segmented design), dispatch, fetch.  Completions are event-scheduled at
issue time, so wakeups become visible at the top of the completion cycle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.common.errors import ConfigurationError, DeadlockError
from repro.common.events import EventQueue
from repro.common.params import ProcessorParams
from repro.common.stats import StatGroup
from repro.core.iq_base import InstructionQueue, Operand
from repro.core.segmented.links import NEVER
from repro.frontend.fetch import FrontEnd
from repro.isa.instruction import DynInst
from repro.isa.opcodes import FUClass, OpClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.events import TraceEvent
from repro.pipeline.fu import FUAcquire, FUPool
from repro.pipeline.kernels import rename_kernel
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.rob import ReorderBuffer


def build_iq(params: ProcessorParams, stats: StatGroup) -> InstructionQueue:
    """Instantiate the IQ design selected by ``params.iq.kind``.

    Designs live in the model registry (:mod:`repro.core.registry`);
    registering a new design there makes it constructible here, runnable
    from the CLI, and subject to the validation campaign and the
    cross-model conformance suite with no further wiring.
    """
    # Imported here (not at module load) to keep core model modules lazy.
    from repro.core.registry import get_model
    iq_params = params.iq
    iq_params.validate()
    return get_model(iq_params.kind).build(iq_params, params.issue_width,
                                           stats)


@dataclass(frozen=True)
class ProgressTick:
    """One heartbeat from a long :meth:`Processor.run`."""

    cycle: int
    committed: int
    elapsed_seconds: float
    kcycles_per_sec: float


#: Cycles between wall-clock checks on the progress path (keeps the
#: heartbeat overhead out of the per-cycle hot loop).
_PROGRESS_STRIDE = 4096


class _SkipReplay:
    """Fused per-cycle stat replay for quiescent stretches.

    One object per processor captures every stat the stepped loop would
    have touched over a quiescent cycle (core counters, ROB occupancy,
    the dispatch-stall attribution) so a skip window is replayed with a
    single call instead of a scatter of per-component lookups.  The
    design-specific hooks (``iq.skip_cycles`` and friends) stay dynamic
    attribute calls: tests and tools wrap them per instance.
    """

    __slots__ = ("_proc", "_stat_cycles", "_stat_skipped", "_stat_windows",
                 "_stall_rob", "_stall_lsq", "_stall_iq", "_stall_chain")

    def __init__(self, proc) -> None:
        self._proc = proc
        self._stat_cycles = proc.stat_cycles
        self._stat_skipped = proc.stat_skip_cycles
        self._stat_windows = proc.stat_skip_windows
        self._stall_rob = proc.stat_dispatch_stall_rob
        self._stall_lsq = proc.stat_dispatch_stall_lsq
        self._stall_iq = proc.stat_dispatch_stall_iq
        self._stall_chain = proc.stat_dispatch_stall_chain

    def replay(self, now: int, count: int, stall: str) -> None:
        self._stat_cycles.inc(count)
        self._stat_skipped.inc(count)
        self._stat_windows.inc()
        proc = self._proc
        iq = proc.iq
        iq.skip_cycles(now, count)
        proc.lsq.skip_cycles(now, count)
        proc.frontend.skip_cycles(now, count)
        rob = proc.rob      # dynamic: the ROB is swappable post-init
        rob.stat_occupancy.sample_n(len(rob), count)
        if stall == "rob":
            rob.stat_full_stalls.inc(count)
            self._stall_rob.inc(count)
        elif stall == "lsq":
            self._stall_lsq.inc(count)
        elif stall == "iq":
            self._stall_iq.inc(count)
            # The probe's can_dispatch call already covered cycle `now`.
            iq.skip_blocked_dispatch(count - 1)
        elif stall == "chain":
            self._stall_chain.inc(count)
            iq.skip_blocked_dispatch(count - 1)


class Processor:
    """Dynamically scheduled superscalar core running a dynamic stream."""

    def __init__(self, params: ProcessorParams, stream: Iterator[DynInst],
                 stats: Optional[StatGroup] = None, *,
                 tracer=None, metrics=None) -> None:
        params.validate()
        self.params = params
        # Hot-loop copies of per-cycle limits: attribute chains through
        # `params` show up in profiles at millions of cycles.
        self._commit_width = params.commit_width
        self._dispatch_width = params.dispatch_width
        self._watchdog = params.watchdog_cycles
        self._clustered = params.clusters > 1
        self.stats = stats if stats is not None else StatGroup()
        self.events = EventQueue()
        self.memory = MemoryHierarchy(params.memory, self.events, self.stats)
        self.frontend = FrontEnd(params, stream, self.memory.l1i,
                                 self.events, self.stats)
        self.fu_pool = FUPool(params.fu_counts, self.stats, params.clusters)
        self._fu_acquire = FUAcquire(self.fu_pool)
        # Fused C rename loop (pipeline kernel tier); clustered configs
        # keep the Python loop for its bypass-penalty bookkeeping.
        self._c_rename = None if self._clustered else rename_kernel()
        self.iq = build_iq(params, self.stats)
        self._cluster_load = [0] * params.clusters
        self.rob = ReorderBuffer(params.rob_size, self.stats)
        self.lsq = LoadStoreQueue(params.effective_lsq_size, self.memory,
                                  self.events, self.stats,
                                  iq=self.iq, fu_pool=self.fu_pool,
                                  policy=params.mem_dep_policy)
        # Give the segmented IQ access to the memory hierarchy for hit/miss
        # predictor training (it checks L1 residence at dispatch).
        if hasattr(self.iq, "attach_memory"):
            self.iq.attach_memory(self.memory)

        # Observability (repro.obs): every component holds the same tracer
        # and guards each emission with `if tracer is not None`, so a
        # disabled tracer costs one attribute load per potential event.
        self.tracer = tracer
        self.frontend.tracer = tracer
        self.lsq.tracer = tracer
        self.iq.attach_tracer(tracer)
        if metrics is not None and not hasattr(metrics, "sample"):
            from repro.obs.metrics import MetricsCollector
            metrics = MetricsCollector(metrics)
        self.metrics = metrics

        self._last_writer: Dict[int, DynInst] = {}
        self.cycle = 0
        self.committed = 0
        self._halt_committed = False
        self._last_commit_cycle = 0

        #: Called with (inst, cycle) the moment each instruction commits;
        #: the validation oracle uses this to record the retired stream.
        self.commit_listeners: List[Callable[[DynInst, int], None]] = []
        self.invariant_checker = None
        if params.check_invariants:
            # Imported here so benchmark runs never touch the validation
            # package.
            from repro.validation.invariants import InvariantChecker
            self.invariant_checker = InvariantChecker(self)

        self.stat_cycles = self.stats.counter("cycles")
        self.stat_committed = self.stats.counter("committed")
        self.stat_dispatch_stall_iq = self.stats.counter(
            "dispatch.stall_iq", "dispatch stalls: IQ full")
        self.stat_dispatch_stall_chain = self.stats.counter(
            "dispatch.stall_chain", "dispatch stalls: no free chain wire")
        self.stat_dispatch_stall_rob = self.stats.counter(
            "dispatch.stall_rob", "dispatch stalls: ROB full")
        self.stat_dispatch_stall_lsq = self.stats.counter(
            "dispatch.stall_lsq", "dispatch stalls: LSQ full")
        self.stat_dispatched = self.stats.counter("dispatched")
        self.stat_cross_cluster = self.stats.counter(
            "clusters.cross_forwards",
            "operands forwarded across clusters (pay the bypass penalty)")

        # Event-driven cycle skipping (docs/performance.md).  Enabled only
        # inside run() so direct step() callers keep 1-call-per-cycle
        # semantics, and only without the invariant checker (its value is
        # per-cycle coverage, which skipping would silently thin out).
        self._event_driven = params.event_driven
        self._skip_enabled = False
        self._cycle_limit = 1 << 62
        self._skip_stall = ""
        self.stat_skip_cycles = self.stats.counter(
            "skip.cycles_skipped",
            "quiescent cycles fast-forwarded without stepping")
        self.stat_skip_windows = self.stats.counter(
            "skip.windows", "contiguous quiescent stretches skipped")
        self._skip_replay = _SkipReplay(self)

    # ------------------------------------------------------------ warmup --
    def warm_code(self, program) -> None:
        """Pre-install the program's code footprint in L1I and L2.

        The paper simulates 100 M-instruction samples taken 20 B
        instructions into execution, i.e. with warm instruction caches; our
        samples are short, so benchmarks warm the code explicitly to avoid
        charging every run a cold straight-line I-miss sequence.
        """
        from repro.frontend.fetch import INST_BYTES
        line = self.params.memory.l1i.line_bytes
        for byte_addr in range(0, len(program) * INST_BYTES, line):
            self.memory.l1i.warm_line(byte_addr)
            self.memory.l2.warm_line(byte_addr)

    def warm_data(self, program) -> None:
        """Pre-install the program's data segments in L2 (not L1D).

        Useful for modelling steady-state behaviour of kernels whose
        working set is L2-resident.
        """
        line = self.params.memory.l2.line_bytes
        for segment in program.segments.values():
            for byte_addr in range(segment.base, segment.base + segment.bytes,
                                   line):
                self.memory.l2.warm_line(byte_addr)

    def load_warm_state(self, warm: Dict[str, dict]) -> None:
        """Install microarchitectural state from an architectural checkpoint.

        ``warm`` is the checkpoint's warm-state dict (see
        :mod:`repro.sampling.checkpoint`): branch predictor + BTB tables
        under ``"frontend"``, per-level cache tags under ``"caches"``.
        Must be called before the first :meth:`step`.
        """
        if self.cycle:
            raise ConfigurationError(
                "warm state must be installed before simulation starts")
        if "frontend" in warm:
            self.frontend.load_warm_state(warm["frontend"])
        if "caches" in warm:
            self.memory.load_tag_state(warm["caches"])

    # --------------------------------------------------------------- run --
    @property
    def done(self) -> bool:
        return (self._halt_committed
                or (self.frontend.drained and len(self.rob) == 0))

    def run(self, max_cycles: Optional[int] = None, *,
            max_committed: Optional[int] = None,
            progress: Optional[Callable[[ProgressTick], None]] = None,
            progress_interval: float = 5.0) -> StatGroup:
        """Simulate until the program halts (or a budget is exhausted).

        ``max_cycles`` bounds simulated cycles; ``max_committed`` stops the
        simulation at the end of the first cycle in which the cumulative
        commit count reaches it (the sampling subsystem uses this to end
        warmup and measurement phases on instruction boundaries).  Both
        budgets are cumulative across repeated ``run`` calls, so a run can
        be resumed by calling ``run`` again with a larger budget.

        ``progress``, if given, is called with a :class:`ProgressTick`
        roughly every ``progress_interval`` wall-clock seconds — the
        heartbeat behind the CLI's ``--progress N``.
        """
        limit = max_cycles if max_cycles is not None else 1 << 62
        commit_limit = max_committed if max_committed is not None else 1 << 62
        self._cycle_limit = limit
        self._skip_enabled = (self._event_driven
                              and self.invariant_checker is None)
        try:
            if progress is None:
                while (not self.done and self.cycle < limit
                       and self.committed < commit_limit):
                    self.step()
            else:
                start = last = time.monotonic()
                last_cycle = self.cycle
                next_check = self.cycle + _PROGRESS_STRIDE
                while (not self.done and self.cycle < limit
                       and self.committed < commit_limit):
                    self.step()
                    if self.cycle >= next_check:
                        next_check = self.cycle + _PROGRESS_STRIDE
                        now = time.monotonic()
                        if now - last >= progress_interval:
                            rate = (self.cycle - last_cycle) / (now - last) / 1e3
                            progress(ProgressTick(
                                cycle=self.cycle, committed=self.committed,
                                elapsed_seconds=now - start,
                                kcycles_per_sec=rate))
                            last, last_cycle = now, self.cycle
        finally:
            self._skip_enabled = False
            self._cycle_limit = 1 << 62
        self.stat_committed.value = self.committed
        return self.stats

    def step(self) -> None:
        """Advance one cycle (or skip a quiescent stretch, then advance
        the first *active* cycle — see docs/performance.md)."""
        now = self.cycle
        if self._skip_enabled:
            wake = self._next_active_cycle(now)
            while wake > now:
                self._apply_skip(now, wake - now)
                self.cycle = wake
                if wake >= self._cycle_limit:
                    return      # budget exhausted mid-stretch
                now = wake
                # Coalesce adjacent windows: a long miss shadow steps
                # through several memory-hierarchy events (L1 -> L2 ->
                # memory), each of which wakes the core without enabling
                # any pipeline stage.  Fire the due events; if the
                # machine is still quiescent, keep skipping instead of
                # paying for a full per-stage step per event.
                if self.events.next_event_cycle() != now:
                    break       # woken for a stage, not an event
                self.events.advance_to(now)
                wake = self._next_active_cycle(now)
        self.events.advance_to(now)
        self._commit(now)
        self.lsq.cycle(now)
        self._issue(now)
        # Pending events imply instructions in execution (completions,
        # cache fills); the segmented IQ's deadlock detector (paper 4.5)
        # must not fire while any are outstanding.
        iq = self.iq
        iq.in_flight = len(self.events)
        iq.last_commit_cycle = self._last_commit_cycle
        iq.cycle(now)
        self._dispatch(now)
        self.frontend.cycle(now)
        self.rob.stat_occupancy.sample(len(self.rob))
        metrics = self.metrics
        if metrics is not None and now >= metrics.next_cycle:
            metrics.sample(self, now)
        if self.invariant_checker is not None:
            self.invariant_checker.check(now)
        self.cycle = now + 1
        self.stat_cycles.inc()
        if now - self._last_commit_cycle > self._watchdog:
            raise DeadlockError(
                f"no commit for {self.params.watchdog_cycles} cycles at "
                f"cycle {now}: rob={len(self.rob)} iq={self.iq.occupancy} "
                f"head={self.rob.head()!r}")

    @property
    def ipc(self) -> float:
        return self.committed / self.cycle if self.cycle else 0.0

    # ------------------------------------------------------ event-driven --
    def _next_active_cycle(self, now: int) -> int:
        """First cycle >= ``now`` on which any stage could act.

        Returns ``now`` itself when the current cycle is (or merely might
        be) active; waking early is always safe — the probe just re-runs —
        so every check only has to be conservative in that direction.  The
        dispatch probe runs last because ``can_dispatch`` has side effects
        (stall counters) and must be called exactly once per blocked cycle.
        """
        self._skip_stall = ""
        ev = self.events.next_event_cycle()
        if 0 <= ev <= now:
            return now          # completions / fills land this cycle
        wake = ev if ev > now else NEVER

        head = self.rob.head()
        if head is not None and head.completed_cycle >= 0:
            return now          # commit retires at least one entry

        if self.lsq.has_candidates():
            return now          # a memory access may go to the cache

        iq = self.iq
        iq.in_flight = len(self.events)
        iq.last_commit_cycle = self._last_commit_cycle
        iq_wake = iq.next_event_cycle(now)
        if iq_wake <= now:
            return now
        if iq_wake < wake:
            wake = iq_wake

        metrics = self.metrics
        if metrics is not None:
            if now >= metrics.next_cycle:
                return now
            if metrics.next_cycle < wake:
                wake = metrics.next_cycle

        # The watchdog must still fire at the same cycle it would have
        # fired under plain stepping: never skip past its deadline.
        deadline = self._last_commit_cycle + self._watchdog + 1
        if deadline <= now:
            return now
        if deadline < wake:
            wake = deadline

        fe = self.frontend
        fe_wake = fe.next_event_cycle(now)
        if fe_wake <= now:
            return now
        if fe_wake < wake:
            wake = fe_wake

        # Dispatch: probe once, remember why it is blocked so the stall
        # counters can be replayed for the whole stretch.
        if now < self.lsq.violation_flush_until:
            if self.lsq.violation_flush_until < wake:
                wake = self.lsq.violation_flush_until
        else:
            inst = fe.peek_dispatchable(now)
            rob = self.rob
            lsq = self.lsq
            if inst is None:
                if fe._pipeline and fe._pipeline[0][0] < wake:
                    wake = fe._pipeline[0][0]
            elif len(rob._entries) >= rob.size:     # has_space, inlined
                self._skip_stall = "rob"
            elif inst.op_class in (OpClass.HALT, OpClass.NOP,
                                   OpClass.JUMP):
                return now      # would dispatch (bypasses the IQ)
            elif inst.is_mem and len(lsq._order) >= lsq.size:
                self._skip_stall = "lsq"
            else:
                prev_iq_now = getattr(iq, "now", None)
                if prev_iq_now is not None:
                    iq.now = now
                admitted = iq.can_dispatch(inst)
                if prev_iq_now is not None:
                    iq.now = prev_iq_now
                if admitted:
                    return now
                if getattr(iq, "blocked_on_chain", False):
                    self._skip_stall = "chain"
                else:
                    self._skip_stall = "iq"
                bd_wake = iq.blocked_dispatch_wake(now)
                if bd_wake < wake:
                    wake = bd_wake

        if self._cycle_limit < wake:
            wake = self._cycle_limit
        return wake

    def _apply_skip(self, now: int, count: int) -> None:
        """Replay the per-cycle accounting of ``count`` quiescent cycles
        [now, now+count) in O(1) (fused into one replay object)."""
        self._skip_replay.replay(now, count, self._skip_stall)

    # ------------------------------------------------------------ commit --
    def _commit(self, now: int) -> None:
        rob_entries = self.rob._entries
        if not rob_entries:
            return
        lsq = self.lsq
        listeners = self.commit_listeners
        tracer = self.tracer
        committed = 0
        width = self._commit_width
        while committed < width and rob_entries:
            inst = rob_entries[0]
            completed = inst.completed_cycle
            if completed < 0 or completed > now:
                break
            rob_entries.popleft()
            inst.committed_cycle = now
            if inst.is_mem:
                lsq.commit(inst, now)
            if inst.static.is_halt:
                self._halt_committed = True
            committed += 1
            if tracer is not None:
                tracer.emit(TraceEvent(cycle=now, kind="commit",
                                       seq=inst.seq, pc=inst.pc,
                                       op=inst.static.opcode.value))
            for listener in listeners:
                listener(inst, now)
        if committed:
            self.committed += committed
            self._last_commit_cycle = now

    # ------------------------------------------------------------- issue --
    def _issue(self, now: int) -> None:
        acquire_fu = self._fu_acquire
        acquire_fu.now = now
        issued = self.iq.select_issue(now, acquire_fu)
        if not issued:
            return
        checker = self.invariant_checker
        tracer = self.tracer
        clustered = self._clustered
        events = self.events
        lsq = self.lsq
        # Inlined _start_execution (one call per issued instruction).
        for entry in issued:
            if checker is not None:
                checker.check_issue(entry, now)
            inst = entry.inst
            inst.issued_cycle = now
            if tracer is not None:
                tracer.emit(TraceEvent(cycle=now, kind="issue",
                                       seq=inst.seq, pc=inst.pc,
                                       op=inst.static.opcode.value))
            if clustered:
                self._cluster_load[inst.cluster] -= 1
            if inst.is_mem:
                # The IQ issued the effective-address calculation (1-cycle
                # add); the LSQ takes over once the address is available.
                ea_cycle = now + 1
                events.schedule_at(
                    ea_cycle,
                    lambda inst=inst, ea_cycle=ea_cycle:
                        lsq.address_ready(inst, ea_cycle))
                continue
            done = now + inst.latency
            inst.set_value_ready(done)
            events.schedule_at(
                done, lambda inst=inst, done=done: self._complete(inst, done))

    def _complete(self, inst: DynInst, cycle: int) -> None:
        inst.completed_cycle = cycle
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(TraceEvent(cycle=cycle, kind="writeback",
                                   seq=inst.seq, pc=inst.pc,
                                   op=inst.static.opcode.value,
                                   dst=inst.dest if inst.dest is not None
                                   else -1))
        self.iq.on_writeback(inst, cycle)
        if inst.mispredicted and inst.is_branch:
            if tracer is not None:
                tracer.emit(TraceEvent(cycle=cycle, kind="squash",
                                       seq=inst.seq, pc=inst.pc,
                                       op=inst.static.opcode.value,
                                       info="branch_mispredict"))
            self.frontend.branch_resolved(inst, cycle)

    # ---------------------------------------------------------- dispatch --
    def _dispatch(self, now: int) -> None:
        """Dispatch up to ``dispatch_width`` decoded instructions.

        One flat loop (rename and per-instruction admission checks
        inlined): this runs for every instruction the machine executes,
        so each helper call and repeated attribute chain costs real
        simulator throughput.
        """
        lsq = self.lsq
        if now < lsq.violation_flush_until:
            return      # squash penalty after a memory-order violation
        pipeline = self.frontend._pipeline
        if not pipeline or pipeline[0][0] > now:
            return
        rob = self.rob
        rob_entries = rob._entries
        rob_size = rob.size
        # Admission is inlined only for the stock ROB; a subclass (e.g.
        # the negative-testing BrokenROB) keeps its dispatch override.
        plain_rob = type(rob) is ReorderBuffer
        iq = self.iq
        tracer = self.tracer
        clustered = self._clustered
        c_rename = self._c_rename
        last_writer = self._last_writer
        dispatched = 0
        width = self._dispatch_width
        while dispatched < width and pipeline and pipeline[0][0] <= now:
            inst = pipeline[0][1]
            if len(rob_entries) >= rob_size:
                rob.stat_full_stalls.inc()
                self.stat_dispatch_stall_rob.inc()
                break
            op_class = inst.op_class

            if op_class in (OpClass.HALT, OpClass.NOP, OpClass.JUMP):
                # No register work: completes at dispatch.  A mispredicted
                # jump (BTB miss) was already charged by stalling fetch
                # until the decode stage could compute the target; release
                # fetch now.
                if plain_rob:
                    inst.rob_index = len(rob_entries)
                    rob_entries.append(inst)
                else:
                    rob.dispatch(inst)
                inst.dispatched_cycle = now
                inst.completed_cycle = now
                if tracer is not None:
                    tracer.emit(TraceEvent(
                        cycle=now, kind="dispatch", seq=inst.seq, pc=inst.pc,
                        op=inst.static.opcode.value, info="bypass_iq"))
                if inst.mispredicted and op_class is OpClass.JUMP:
                    self.frontend.branch_resolved(inst, now)
                pipeline.popleft()
                dispatched += 1
                continue

            is_mem = inst.is_mem
            if is_mem and len(lsq._order) >= lsq.size:  # has_space, inlined
                self.stat_dispatch_stall_lsq.inc()
                break
            if not iq.can_dispatch(inst):
                if iq.blocked_on_chain:
                    self.stat_dispatch_stall_chain.inc()
                else:
                    self.stat_dispatch_stall_iq.inc()
                break

            if clustered:
                inst.cluster = self._steer_cluster(inst, now)
                self._cluster_load[inst.cluster] += 1
            # Rename (inlined _operand_for over the IQ-relevant sources).
            srcs = inst.srcs
            if c_rename is not None:
                operands = c_rename(Operand, last_writer, srcs,
                                    1 if is_mem else -1)
            else:
                operands = []
                for reg in (srcs[:1] if is_mem else srcs):
                    producer = last_writer.get(reg) if reg != 0 else None
                    if producer is None:
                        operands.append(Operand(reg, None, 0, 0))
                        continue
                    penalty = 0
                    if (clustered and producer.cluster != inst.cluster
                            and producer.completed_cycle < 0):
                        penalty = self.params.cluster_bypass_penalty
                        self.stat_cross_cluster.inc()
                    ready = producer.value_ready_cycle
                    if ready is not None:
                        ready += penalty
                        penalty = 0  # folded in; no late wakeup will come
                    operands.append(Operand(reg, producer, ready, penalty))
            if plain_rob:
                inst.rob_index = len(rob_entries)
                rob_entries.append(inst)
            else:
                rob.dispatch(inst)
            inst.dispatched_cycle = now
            if is_mem:
                data_ready, data_producer = self._store_data_operand(inst)
                lsq.dispatch(inst, data_ready, data_producer)
            entry = iq.dispatch(inst, operands, now)
            if tracer is not None:
                own_chain = getattr(entry.chain_state, "own_chain", None)
                tracer.emit(TraceEvent(
                    cycle=now, kind="dispatch", seq=inst.seq, pc=inst.pc,
                    op=inst.static.opcode.value, seg=entry.segment,
                    dst=inst.dest if inst.dest is not None else -1,
                    chain=own_chain.chain_id
                    if own_chain is not None else -1))
            dest = inst.dest
            if dest is not None and dest != 0:
                last_writer[dest] = inst
            pipeline.popleft()
            dispatched += 1
        if dispatched:
            self.stat_dispatched.inc(dispatched)

    def _steer_cluster(self, inst: DynInst, now: int) -> int:
        """Pick an execution cluster (section-7 horizontal clustering)."""
        steering = self.params.cluster_steering
        if steering == "chain" and hasattr(self.iq, "preferred_cluster"):
            preferred = self.iq.preferred_cluster(inst, now)
            if preferred is not None:
                return preferred
        if steering in ("chain", "dependence"):
            for reg in (inst.srcs[:1] if inst.is_mem else inst.srcs):
                producer = self._last_writer.get(reg)
                if producer is not None and producer.value_ready_cycle is None:
                    return producer.cluster
        return min(range(self.params.clusters),
                   key=lambda c: self._cluster_load[c])

    def _operand_for(self, reg: int,
                     consumer: Optional[DynInst] = None) -> Operand:
        if reg == 0:
            return Operand(reg=reg, ready_cycle=0)
        producer = self._last_writer.get(reg)
        if producer is None:
            return Operand(reg=reg, ready_cycle=0)
        penalty = 0
        if (self._clustered and consumer is not None
                and producer.cluster != consumer.cluster
                and producer.completed_cycle < 0):
            penalty = self.params.cluster_bypass_penalty
            self.stat_cross_cluster.inc()
        ready = producer.value_ready_cycle
        if ready is not None:
            ready += penalty
            penalty = 0     # already folded in; no late wakeup will come
        return Operand(reg=reg, producer=producer, ready_cycle=ready,
                       penalty=penalty)

    def _store_data_operand(self, inst: DynInst):
        if not inst.is_store:
            return None, None
        data_reg = inst.srcs[1]
        operand = self._operand_for(data_reg)
        return operand.ready_cycle, operand.producer
