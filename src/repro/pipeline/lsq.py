"""Load/store queue.

The paper (section 5, following sim-outorder) splits each memory reference
into an effective-address calculation — scheduled through the IQ as an
ordinary integer op — and a memory access held in a separate LSQ.  The LSQ
marks an access eligible for issue when its effective address is available
and it is *known not to conflict* with any earlier pending access:

* a load may issue only once every earlier store's address is known
  (conservative disambiguation);
* a load that matches an earlier pending store's address forwards from the
  store once the store's data is ready;
* stores complete (for the ROB) when both address and data are ready, and
  write the data cache at commit.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.errors import InvariantViolation, SimulationError
from repro.common.events import EventQueue
from repro.common.stats import StatGroup
from repro.isa.instruction import DynInst
from repro.isa.opcodes import FUClass, WORD_BYTES
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import LEVEL_FORWARD, MemRequest
from repro.obs.events import TraceEvent

#: Latency of a store-to-load forward, matched to the L1D hit latency.
FORWARD_LATENCY = 3


class LSQEntry:
    """One in-flight memory operation."""

    __slots__ = ("inst", "seq", "is_store", "addr", "word_addr",
                 "addr_ready_cycle", "data_ready_cycle", "issued",
                 "completed", "waiting_loads", "predicted_dep")

    def __init__(self, inst: DynInst) -> None:
        self.inst = inst
        self.seq = inst.seq
        self.is_store = inst.is_store
        self.addr: Optional[int] = None
        self.word_addr: Optional[int] = None
        self.addr_ready_cycle: Optional[int] = None
        self.data_ready_cycle: Optional[int] = None   # stores only
        self.issued = False
        self.completed = False
        self.waiting_loads: List["LSQEntry"] = []     # loads blocked on this store
        # Store-set policy: the in-flight store this load was predicted
        # (at dispatch, in program order) to depend on.
        self.predicted_dep: Optional["LSQEntry"] = None


class LoadStoreQueue:
    """Orders memory operations and issues them to the data cache."""

    #: Dispatch-stall cycles charged for a memory-order mis-speculation
    #: under the store-set policy (approximates a squash + refill).
    VIOLATION_FLUSH_PENALTY = 15

    #: Valid disambiguation policies (see repro.pipeline.memdep).
    POLICIES = ("conservative", "oracle", "store_sets")

    def __init__(self, size: int, memory: MemoryHierarchy,
                 events: EventQueue, stats: StatGroup, *,
                 iq=None, fu_pool=None, policy: str = "conservative") -> None:
        if policy not in self.POLICIES:
            raise SimulationError(f"unknown memory policy {policy!r}")
        self.size = size
        self.policy = policy
        self._memory = memory
        self._events = events
        self.iq = iq                     # set by the processor after build
        self.fu_pool = fu_pool
        self._entries: Dict[int, LSQEntry] = {}
        self._order: Deque[LSQEntry] = deque()
        # Store seqs whose address is still unknown (lazy-deleted heap).
        self._unknown_stores: List[int] = []
        self._known_stores: set = set()
        # Active (un-committed) stores by *timing-known* word address.
        self._stores_by_word: Dict[tuple, List[LSQEntry]] = {}
        # Active stores by their architecturally true word address
        # (known at dispatch from the functional simulator); used by the
        # oracle policy and for store-set violation detection.
        self._true_stores_by_word: Dict[tuple, List[LSQEntry]] = {}
        # Issued, un-committed loads by true word (store-set violations).
        self._issued_loads_by_word: Dict[tuple, List[LSQEntry]] = {}
        # Loads eligible to attempt issue this cycle.
        self._candidates: Deque[LSQEntry] = deque()
        # Loads with known addresses waiting for earlier store addresses.
        self._frontier_blocked: List = []     # heap of (seq, entry)
        # Dispatch stalls until this cycle after a mis-speculation.
        self.violation_flush_until = 0
        #: Observability sink (see :mod:`repro.obs`); installed by the
        #: processor, ``None`` disables tracing.
        self.tracer = None
        if policy == "store_sets":
            from repro.pipeline.memdep import StoreSetPredictor
            self.memdep = StoreSetPredictor(stats)
        else:
            self.memdep = None

        self.stat_loads = stats.counter("lsq.loads")
        self.stat_stores = stats.counter("lsq.stores")
        self.stat_forwards = stats.counter(
            "lsq.forwards", "loads satisfied by store-to-load forwarding")
        self.stat_conflict_waits = stats.counter(
            "lsq.conflict_waits", "loads that waited on an earlier store")
        self.stat_occupancy = stats.distribution("lsq.occupancy")

    # ------------------------------------------------------------ space --
    @property
    def occupancy(self) -> int:
        return len(self._order)

    def has_space(self) -> bool:
        return len(self._order) < self.size

    # --------------------------------------------------------- dispatch --
    def dispatch(self, inst: DynInst, data_operand_ready: Optional[int],
                 data_producer: Optional[DynInst]) -> LSQEntry:
        """Allocate an entry at dispatch.

        For stores, ``data_operand_ready``/``data_producer`` describe the
        store-data register (the address register is tracked through the IQ).
        """
        if not self.has_space():
            raise SimulationError("LSQ dispatch with no space")
        entry = LSQEntry(inst)
        self._entries[entry.seq] = entry
        self._order.append(entry)
        if entry.is_store:
            self.stat_stores.inc()
            heapq.heappush(self._unknown_stores, entry.seq)
            if self.policy != "conservative":
                self._true_stores_by_word.setdefault(
                    self._true_key(entry), []).append(entry)
            if self.memdep is not None:
                self.memdep.store_fetched(inst.pc, entry)
            if data_producer is not None and data_operand_ready is None:
                data_producer.waiters.append(
                    lambda cycle, e=entry: self._store_data_ready(e, cycle))
            else:
                entry.data_ready_cycle = data_operand_ready or 0
        else:
            self.stat_loads.inc()
            if self.memdep is not None:
                # Consult the LFST here, in program order, so the load is
                # paired with its most recent *earlier* set member.
                entry.predicted_dep = self.memdep.predicted_store(inst.pc)
        return entry

    # ------------------------------------------------- address delivery --
    def _true_key(self, entry: LSQEntry) -> tuple:
        """Architecturally true (thread, word) key, known at dispatch."""
        return (entry.inst.thread, entry.inst.mem_addr // WORD_BYTES)

    def _timing_key(self, entry: LSQEntry) -> tuple:
        return (entry.inst.thread, entry.word_addr)

    def address_ready(self, inst: DynInst, cycle: int) -> None:
        """The IQ finished the effective-address calculation."""
        entry = self._entries[inst.seq]
        entry.addr = inst.mem_addr
        entry.word_addr = inst.mem_addr // WORD_BYTES
        entry.addr_ready_cycle = cycle
        if entry.is_store:
            self._known_stores.add(entry.seq)
            self._stores_by_word.setdefault(
                self._timing_key(entry), []).append(entry)
            if self.memdep is not None:
                self._detect_violations(entry, cycle)
            # Loads parked on this store for its address can re-check now.
            if entry.waiting_loads:
                self._candidates.extend(entry.waiting_loads)
                entry.waiting_loads = []
            self._maybe_complete_store(entry)
            self._advance_frontier()
        elif self.policy == "conservative":
            if entry.seq < self.store_frontier:
                self._candidates.append(entry)
            else:
                heapq.heappush(self._frontier_blocked, (entry.seq, entry))
        elif self.policy == "store_sets":
            predicted = entry.predicted_dep
            if (predicted is not None
                    and predicted.seq < entry.seq
                    and predicted.inst.completed_cycle < 0
                    and predicted.seq in self._entries):
                self.stat_conflict_waits.inc()
                predicted.waiting_loads.append(entry)
            else:
                self._candidates.append(entry)
        else:                              # oracle
            self._candidates.append(entry)

    def _detect_violations(self, store: LSQEntry, cycle: int) -> None:
        """Store-set policy: a younger load already issued to this store's
        word means the load speculated past a true dependence — but only
        if *this* store is the load's youngest earlier same-word store
        (a load that forwarded from an intervening store saw the right
        value)."""
        issued = self._issued_loads_by_word.get(self._timing_key(store))
        if not issued:
            return
        stores = self._stores_by_word.get(self._timing_key(store), ())
        violated = False
        for load in issued:
            if load.seq <= store.seq or not load.issued:
                continue
            youngest_earlier = None
            for candidate in stores:
                if candidate.seq < load.seq and (
                        youngest_earlier is None
                        or candidate.seq > youngest_earlier.seq):
                    youngest_earlier = candidate
            if youngest_earlier is store:
                self.memdep.record_violation(load.inst.pc, store.inst.pc)
                violated = True
                if self.tracer is not None:
                    self.tracer.emit(TraceEvent(
                        cycle=cycle, kind="squash", seq=load.seq,
                        pc=load.inst.pc, op=load.inst.static.opcode.value,
                        info="mem_order"))
        if violated:
            self.violation_flush_until = max(
                self.violation_flush_until,
                cycle + self.VIOLATION_FLUSH_PENALTY)

    @property
    def store_frontier(self) -> int:
        """Smallest store seq whose address is unknown (inf if none)."""
        heap = self._unknown_stores
        while heap and heap[0] in self._known_stores:
            self._known_stores.discard(heapq.heappop(heap))
        return heap[0] if heap else 1 << 60

    def _advance_frontier(self) -> None:
        frontier = self.store_frontier
        while self._frontier_blocked and self._frontier_blocked[0][0] < frontier:
            _, entry = heapq.heappop(self._frontier_blocked)
            self._candidates.append(entry)

    # --------------------------------------------------- store tracking --
    def _store_data_ready(self, entry: LSQEntry, cycle: int) -> None:
        entry.data_ready_cycle = cycle
        self._maybe_complete_store(entry)

    def _maybe_complete_store(self, entry: LSQEntry) -> None:
        if entry.addr_ready_cycle is None or entry.data_ready_cycle is None:
            return
        done = max(entry.addr_ready_cycle, entry.data_ready_cycle,
                   self._events.now)
        entry.completed = True
        self._events.schedule_at(
            done, lambda: self._mark_store_complete(entry, done))

    def _mark_store_complete(self, entry: LSQEntry, cycle: int) -> None:
        entry.inst.completed_cycle = cycle
        # Loads parked on this store can now forward from it.
        waiting, entry.waiting_loads = entry.waiting_loads, []
        self._candidates.extend(waiting)

    # ------------------------------------------------------ event-driven --
    def has_candidates(self) -> bool:
        """True when :meth:`cycle` would attempt load issue this cycle
        (used by the processor's skip-ahead probe; every other LSQ
        transition is event-driven and wakes the processor by itself)."""
        return bool(self._candidates)

    def skip_cycles(self, now: int, count: int) -> None:
        """Replay the per-cycle occupancy sample over a quiescent stretch."""
        self.stat_occupancy.sample_n(len(self._order), count)

    # -------------------------------------------------------- load issue --
    def cycle(self, now: int) -> None:
        """Attempt to issue every candidate load."""
        self.stat_occupancy.sample(len(self._order))
        if not self._candidates:
            return
        retry: List[LSQEntry] = []
        while self._candidates:
            entry = self._candidates.popleft()
            if entry.issued:
                continue
            blocker = self._conflicting_store(entry)
            if blocker is not None:
                if blocker.inst.completed_cycle >= 0:
                    self._forward(entry, now)
                elif blocker.addr_ready_cycle is None:
                    # Oracle policy: a true conflict whose address the
                    # timing model has not computed yet; wait for it.
                    self.stat_conflict_waits.inc()
                    blocker.waiting_loads.append(entry)
                else:
                    self.stat_conflict_waits.inc()
                    blocker.waiting_loads.append(entry)
                continue
            if not self._issue_to_cache(entry, now):
                retry.append(entry)
        self._candidates.extend(retry)

    def _conflicting_store(self, load: LSQEntry) -> Optional[LSQEntry]:
        """Youngest earlier un-committed store to the same word, if any.

        The conservative and store-set policies see only stores whose
        addresses the timing model has resolved (store-set loads speculate
        past unresolved ones; conservative loads were already held back by
        the frontier).  The oracle consults true addresses.
        """
        if self.policy == "oracle":
            stores = self._true_stores_by_word.get(self._true_key(load))
        else:
            stores = self._stores_by_word.get(self._timing_key(load))
        if not stores:
            return None
        for store in reversed(stores):
            if store.seq < load.seq:
                return store
        return None

    def _forward(self, load: LSQEntry, now: int) -> None:
        self.stat_forwards.inc()
        load.issued = True
        if self.memdep is not None:
            self._issued_loads_by_word.setdefault(
                self._timing_key(load), []).append(load)
        done = now + FORWARD_LATENCY
        inst = load.inst
        inst.mem_level = LEVEL_FORWARD

        def complete() -> None:
            inst.completed_cycle = done
            inst.set_value_ready(done)
            load.completed = True
            if self.iq is not None:
                self.iq.notify_load_complete(inst, done)

        self._events.schedule_at(done, complete)

    def _issue_to_cache(self, load: LSQEntry, now: int) -> bool:
        if self.fu_pool is not None and not any(
                self.fu_pool.can_accept(FUClass.MEM_PORT, now, cluster)
                for cluster in range(self.fu_pool.clusters)):
            return False
        inst = load.inst

        def on_complete(request: MemRequest) -> None:
            cycle = request.completed_cycle
            inst.mem_level = request.level
            inst.completed_cycle = cycle
            inst.set_value_ready(cycle)
            load.completed = True
            if self.iq is not None:
                self.iq.notify_load_complete(inst, cycle)

        def on_miss(request: MemRequest) -> None:
            if self.iq is not None:
                self.iq.notify_load_miss(inst, self._events.now)

        request = MemRequest(addr=load.addr, is_write=False,
                             on_complete=on_complete, on_miss=on_miss)
        if not self._memory.data_access(request):
            return False            # MSHRs full; retry next cycle
        if self.fu_pool is not None:
            self.fu_pool.try_cache_port(now)
        load.issued = True
        if self.memdep is not None:
            self._issued_loads_by_word.setdefault(
                self._timing_key(load), []).append(load)
        return True

    # -------------------------------------------------------- invariants --
    def check(self, now: int) -> None:
        """Invariants: bounded occupancy, program-ordered queue, and
        agreement between the seq index and the age-ordered deque."""
        if len(self._order) > self.size:
            raise InvariantViolation(
                f"LSQ holds {len(self._order)} > size {self.size} "
                f"at cycle {now}")
        if len(self._order) != len(self._entries):
            raise InvariantViolation(
                f"LSQ index/order disagreement at cycle {now}: "
                f"{len(self._entries)} indexed vs {len(self._order)} ordered")
        previous = -1
        for entry in self._order:
            if entry.seq <= previous:
                raise InvariantViolation(
                    f"LSQ out of program order at cycle {now}: "
                    f"#{entry.seq} follows #{previous}")
            if self._entries.get(entry.seq) is not entry:
                raise InvariantViolation(
                    f"LSQ entry #{entry.seq} missing from the seq index "
                    f"at cycle {now}")
            previous = entry.seq

    # ------------------------------------------------------------ commit --
    def commit(self, inst: DynInst, now: int) -> None:
        """Remove the op at commit; stores write the data cache here."""
        entry = self._entries.pop(inst.seq)
        if self._order and self._order[0] is entry:
            self._order.popleft()
        else:
            self._order.remove(entry)
        if not entry.is_store:
            if self.memdep is not None:
                issued = self._issued_loads_by_word.get(
                    self._timing_key(entry))
                if issued and entry in issued:
                    issued.remove(entry)
                    if not issued:
                        del self._issued_loads_by_word[
                            self._timing_key(entry)]
            return
        if entry.is_store:
            key = self._timing_key(entry)
            stores = self._stores_by_word.get(key)
            if stores and entry in stores:
                stores.remove(entry)
                if not stores:
                    del self._stores_by_word[key]
            if self.policy != "conservative":
                true_key = self._true_key(entry)
                true_stores = self._true_stores_by_word.get(true_key)
                if true_stores and entry in true_stores:
                    true_stores.remove(entry)
                    if not true_stores:
                        del self._true_stores_by_word[true_key]
            if self.memdep is not None:
                self.memdep.store_left(inst.pc, entry)
            # Fire-and-forget write access (write-allocate).
            self._memory.data_access(MemRequest(addr=entry.addr,
                                                is_write=True))
            # Any loads still parked (dispatched after completion raced the
            # commit) go back to candidates; they will re-run the conflict
            # check and read the cache.
            self._candidates.extend(entry.waiting_loads)
            entry.waiting_loads = []
