"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``    — show the benchmark analogs and their characters
* ``run``     — simulate one benchmark under one configuration
* ``sample``  — checkpoint-based interval sampling (docs/sampling.md)
* ``sweep``   — IPC-vs-IQ-size curves (Figure 3 style) for one benchmark
* ``disasm``  — print a benchmark kernel's assembly listing
* ``trace``   — structured event trace: pipeline diagram, Chrome
  ``trace_event`` JSON, or JSONL (docs/observability.md)
* ``segments`` — segment-occupancy heatmap from the metrics sampler
* ``validate`` — differential-oracle fuzzing campaign (docs/validation.md)
* ``surrogate`` — analytical-IPC surrogate validation report: predicted
  vs simulated IPC over the bench grid (docs/models.md)
* ``bench``   — simulator throughput + sweep scaling (docs/performance.md)
* ``serve``   — start the simulation job service (docs/service.md)
* ``submit`` / ``status`` / ``cancel`` / ``fetch`` — job-service client:
  submit run/sample/surrogate/sweep jobs to a served instance, poll or
  stream their progress, cancel them, download results and trace
  artifacts

Every simulation command accepts the same common flags — ``--backend
SPEC`` (execution backend: ``local-process``, ``local-shm``,
``ssh:hosta,hostb``; see docs/fabric.md), ``--jobs N`` (worker fan-out
where the command has independent cells), ``--no-cache`` (skip the
on-disk result/checkpoint cache), ``--progress SECONDS`` (heartbeat on
stderr), and ``--json PATH`` (machine-readable artifact alongside the
rendered report) — via shared argparse parent parsers, and routes
simulations through :func:`repro.api.run`.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from repro.core.registry import registered_models
from repro.harness import ascii_series_plot, configs
from repro.workloads import WORKLOADS

#: Every registered IQ design (repro.core.registry); a newly registered
#: model becomes a ``--iq`` choice automatically.
IQ_KINDS = list(registered_models())


def _common_parent() -> argparse.ArgumentParser:
    """Flags every simulation command accepts uniformly."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("common options")
    group.add_argument("--backend", default="local-process", metavar="SPEC",
                       help="execution backend for independent cells: "
                            "local-process (default), local-shm, or "
                            "ssh:host1,host2 (see docs/fabric.md)")
    group.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="concurrent workers for independent cells "
                            "(default: serial; bench defaults to all cores)")
    group.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk result/checkpoint cache")
    group.add_argument("--progress", type=float, default=0.0,
                       metavar="SECONDS",
                       help="print a heartbeat to stderr every N seconds")
    group.add_argument("--json", default="", metavar="PATH",
                       help="also write machine-readable data to this file")
    group.add_argument("--kernels", default="", metavar="BACKEND",
                       choices=["", "auto", "py", "compiled"],
                       help="segmented-IQ kernel backend: 'py' forces the "
                            "pure-Python engine, 'compiled' requires the C "
                            "extension, 'auto' (default) prefers compiled "
                            "when built (see docs/performance.md)")
    return parent


def _config_parent() -> argparse.ArgumentParser:
    """Processor-configuration flags shared by run/sample/trace."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("configuration options")
    group.add_argument("--iq", default="segmented", choices=IQ_KINDS)
    group.add_argument("--size", type=int, default=512)
    group.add_argument("--segment-size", type=int, default=32)
    group.add_argument("--chains", default="128",
                       help="chain wires, or 'unlimited'")
    group.add_argument("--variant", default="comb",
                       choices=["base", "hmp", "lrp", "comb"])
    group.add_argument("--instructions", type=int, default=None,
                       help="instruction budget override")
    group.add_argument("--no-skip", action="store_true",
                       help="disable event-driven cycle skipping (results "
                            "are bit-identical either way; this forces the "
                            "plain one-step-per-cycle loop)")
    return parent


def _parse_chains(value: str):
    return None if value in ("unlimited", "none") else int(value)


def _params_from_args(args) -> "ProcessorParams":
    if args.iq == "ideal":
        params = configs.ideal(args.size)
    elif args.iq == "segmented":
        params = configs.segmented(args.size, _parse_chains(args.chains),
                                   args.variant,
                                   segment_size=args.segment_size)
    elif args.iq == "prescheduled":
        params = configs.prescheduled(max(1, (args.size - 32) // 12))
    elif args.iq == "distance":
        params = configs.distance(max(1, (args.size - 32) // 12))
    elif args.iq == "fifo":
        params = configs.fifo(args.size, depth=args.segment_size)
    elif args.iq == "delay_tracking":
        params = configs.delay_tracking(args.size)
    else:
        # A registered kind without a CLI mapping: build it from its
        # registry validation config, resized to --size.
        from repro.core.registry import get_model
        params = get_model(args.iq).validation_config()
        params = params.replace(
            iq=dataclasses.replace(params.iq, size=args.size))
    if getattr(args, "no_skip", False):
        params = params.replace(event_driven=False)
    return params


def _make_cache(args):
    """On-disk result cache unless ``--no-cache`` was given."""
    if getattr(args, "no_cache", False):
        return None
    from repro.harness.cache import ResultCache
    return ResultCache()


def _jobs(args, default: int = 1) -> int:
    return default if args.jobs is None else args.jobs


def _execution(args, default_jobs: int = 1, journal=None):
    """An :class:`ExecutionConfig` from the shared CLI flags."""
    from repro.fabric import ExecutionConfig
    return ExecutionConfig(backend=getattr(args, "backend", "local-process"),
                           jobs=_jobs(args, default_jobs),
                           cache=_make_cache(args), journal=journal)


def _write_json(path: str, data) -> None:
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True, default=str)
    print(f"\nraw data written to {path}", file=sys.stderr)


def _heartbeat(tick) -> None:
    """Progress line for long runs (``--progress N``)."""
    print(f"  [{tick.elapsed_seconds:6.1f}s] cycle {tick.cycle:>9,}  "
          f"committed {tick.committed:>9,}  "
          f"{tick.kcycles_per_sec:6.1f} kcycles/s", file=sys.stderr)


def cmd_list(_args) -> int:
    width = max(len(name) for name in WORKLOADS)
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name]
        group = "FP " if spec.is_fp else "INT"
        print(f"{name:<{width}}  [{group}]  ~{spec.default_instructions:>6} "
              f"insts  {spec.description}")
    return 0


def cmd_run(args) -> int:
    from repro import api

    params = _params_from_args(args)
    if args.check_invariants:
        params = params.replace(check_invariants=True)
    from repro.fabric import ExecutionConfig
    result = api.run(params, args.workload,
                     config_label=args.iq,
                     max_instructions=args.instructions,
                     execution=ExecutionConfig(cache=_make_cache(args)),
                     progress=_heartbeat if args.progress else None,
                     progress_interval=args.progress or 5.0)
    print(result)
    stats = result.stats
    print(f"  branch accuracy : {100 * result.branch_accuracy:.1f}%")
    loads = stats.get("lsq.loads", 0)
    if loads:
        delayed = stats.get("l1d.delayed_hits", 0)
        misses = stats.get("l1d.misses", 0)
        print(f"  loads           : {loads:.0f} "
              f"({misses:.0f} misses, {delayed:.0f} delayed hits)")
    if args.iq == "segmented":
        print(f"  chains          : avg {result.chains_avg:.1f}, "
              f"peak {result.chains_peak:.0f}")
        print(f"  promotions      : {stats.get('iq.promotions', 0):.0f} "
              f"(+{stats.get('iq.pushdowns', 0):.0f} pushdowns)")
        print(f"  deadlock events : "
              f"{stats.get('iq.deadlock_recoveries', 0):.0f}")
    if args.stats:
        for key in sorted(stats):
            print(f"  {key:<40} {stats[key]:.3f}")
    if args.json:
        _write_json(args.json, dataclasses.asdict(result))
    return 0


def cmd_sample(args) -> int:
    import time

    from repro import api
    from repro.sampling import (CheckpointStore, SamplingConfig,
                                sample_workload)

    params = _params_from_args(args)
    sampling = SamplingConfig(num_windows=args.windows,
                              warmup_instructions=args.warmup,
                              measure_instructions=args.measure,
                              seed=args.seed)
    store = None if args.no_cache else CheckpointStore()
    started = time.perf_counter()
    report = sample_workload(
        args.workload, params, sampling, config_label=args.iq,
        scale=args.scale, max_instructions=args.instructions,
        jobs=_jobs(args), store=store,
        progress=lambda line: print(f"  {line}...", file=sys.stderr))
    sampled_seconds = time.perf_counter() - started
    print(f"{report.workload} [{report.config}]  "
          f"sampled IPC {report.ipc_estimate:.3f}  "
          f"({report.confidence:.0%} CI "
          f"[{report.ipc_ci_low:.3f}, {report.ipc_ci_high:.3f}], "
          f"{report.estimator} estimator)")
    print(f"  windows  : {len(report.windows)} x "
          f"{sampling.measure_instructions} insts measured "
          f"(+{sampling.warmup_instructions} warmup each), "
          f"{report.dropped_windows} dropped")
    print(f"  detail   : {report.detailed_instructions:,} of "
          f"{report.total_instructions:,} insts "
          f"({100 * report.detail_fraction:.1f}%), "
          f"{report.detailed_cycles:,} detailed cycles, "
          f"{sampled_seconds:.1f}s wall")
    data = report.to_dict()
    data["sampled_seconds"] = round(sampled_seconds, 3)
    if args.compare_full:
        started = time.perf_counter()
        full = api.run(params, args.workload, config_label=args.iq,
                       scale=args.scale,
                       max_instructions=args.instructions)
        full_seconds = time.perf_counter() - started
        error = ((report.ipc_estimate - full.ipc) / full.ipc
                 if full.ipc else 0.0)
        ratio = (full.cycles / report.detailed_cycles
                 if report.detailed_cycles else 0.0)
        print(f"  full     : IPC {full.ipc:.3f} in {full_seconds:.1f}s — "
              f"sampled error {100 * error:+.2f}%, "
              f"{ratio:.1f}x fewer detailed cycles")
        data["compare_full"] = {
            "full_ipc": full.ipc, "full_cycles": full.cycles,
            "full_seconds": round(full_seconds, 3),
            "ipc_error": error, "detail_cycle_ratio": ratio}
    if args.json:
        _write_json(args.json, data)
    return 0


def cmd_sweep(args) -> int:
    from repro.fabric import Executor, RunSpec, raise_on_errors

    sizes = [int(s) for s in args.sizes.split(",")]
    factories = [
        ("ideal", configs.ideal),
        ("segmented-128ch",
         lambda size: configs.segmented(size, 128, "comb")),
        ("segmented-64ch",
         lambda size: configs.segmented(size, 64, "comb"))]
    specs = [RunSpec(args.workload, factory(size),
                     config_label=f"{label}@{size}",
                     max_instructions=args.instructions)
             for label, factory in factories for size in sizes]
    executor = Executor(_execution(args, journal=args.journal or None))
    cells = executor.run_specs(specs)
    raise_on_errors(cells, "sweep")
    series = {label: {} for label, _ in factories}
    for spec, result in zip(specs, cells):
        label, size = spec.config_label.rsplit("@", 1)
        series[label][int(size)] = result.ipc
        print(f"  {label} @{size}: IPC={result.ipc:.3f}", file=sys.stderr)
    print(ascii_series_plot(series,
                            title=f"IPC vs IQ size — {args.workload}"))
    if args.json:
        _write_json(args.json, series)
    return 0


def cmd_disasm(args) -> int:
    program = WORKLOADS[args.workload].build(1)
    print(program.disassemble())
    return 0


def cmd_trace(args) -> int:
    from repro import api
    from repro.harness.trace import (render_pipeline_trace, segment_heatmap,
                                     stage_latency_summary)
    from repro.obs import (MetricsCollector, RingBufferTracer, chrome_trace,
                           dump_jsonl)

    params = _params_from_args(args)
    tracer = RingBufferTracer()
    collector = MetricsCollector(args.interval)
    budget = args.instructions if args.instructions is not None else 2000
    result = api.run(params, args.workload, config_label=args.iq,
                     max_instructions=budget,
                     trace=tracer, metrics=collector,
                     progress=_heartbeat if args.progress else None,
                     progress_interval=args.progress or 5.0)
    events = tracer.events
    report = collector.to_dict()
    if args.format == "ascii":
        print(render_pipeline_trace(events, start_seq=args.start,
                                    count=args.count))
        print()
        print(stage_latency_summary(events))
        samples = collector.segment_samples()
        if samples:
            print(f"\nsegment occupancy — {args.workload} "
                  f"(IPC {result.ipc:.2f})")
            print(segment_heatmap(samples, params.iq.segment_size))
    else:
        out = args.out or ("trace.jsonl" if args.format == "jsonl"
                           else "trace.json")
        if args.format == "jsonl":
            with open(out, "w") as handle:
                handle.write(dump_jsonl(events))
        else:
            with open(out, "w") as handle:
                json.dump(chrome_trace(events, metrics=report), handle)
        print(f"{len(events)} events over {result.cycles} cycles "
              f"(IPC {result.ipc:.2f}) written to {out}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(chrome_trace(events, metrics=report), handle)
        print(f"\nchrome trace written to {args.json}", file=sys.stderr)
    return 0


def cmd_segments(args) -> int:
    from repro import api
    from repro.harness.trace import segment_heatmap
    from repro.obs import MetricsCollector

    params = configs.segmented(args.size, _parse_chains(args.chains),
                               args.variant)
    collector = MetricsCollector(args.interval)
    result = api.run(params, args.workload, config_label="segmented",
                     max_instructions=args.instructions, metrics=collector,
                     progress=_heartbeat if args.progress else None,
                     progress_interval=args.progress or 5.0)
    print(f"segment occupancy over time — {args.workload} "
          f"(IPC {result.ipc:.2f})\n")
    print(segment_heatmap(collector.segment_samples(),
                          params.iq.segment_size))
    if args.json:
        _write_json(args.json, collector.to_dict())
    return 0


def cmd_reproduce(args) -> int:
    from repro.harness.experiments import EXPERIMENTS, save_data

    experiment = EXPERIMENTS[args.experiment]
    workloads = (args.workloads.split(",") if args.workloads else None)
    report, data = experiment.run(
        workloads=workloads, budget_factor=args.budget,
        execution=_execution(args),
        progress=lambda label: print(f"  running {label}...",
                                     file=sys.stderr))
    print(report)
    if args.json:
        save_data(data, args.json)
        print(f"\nraw data written to {args.json}", file=sys.stderr)
    return 0


def cmd_validate(args) -> int:
    from repro.common.errors import ConfigurationError
    from repro.validation import FuzzProfile, run_campaign, validation_models

    profile = FuzzProfile(
        length=args.length, loop_iterations=args.iterations,
        chain_bias=args.chain_bias, miss_bias=args.miss_bias)
    try:
        profile.validate()
    except ConfigurationError as exc:
        raise SystemExit(f"bad fuzz profile: {exc}")
    models = validation_models()
    if args.models:
        wanted = args.models.split(",")
        unknown = [name for name in wanted if name not in models]
        if unknown:
            raise SystemExit(f"unknown model(s) {','.join(unknown)}; "
                             f"known: {','.join(models)}")
        models = {name: models[name] for name in wanted}
    report = run_campaign(
        seed=args.seed, num_programs=args.programs, profile=profile,
        models=models, check_invariants=not args.no_invariants,
        shrink=not args.no_shrink, jobs=_jobs(args),
        progress=(lambda line: print(f"  {line}", file=sys.stderr))
        if args.verbose else None)
    print(report.summary())
    if args.json:
        _write_json(args.json, {"ok": report.ok,
                                "summary": report.summary()})
    return 0


def cmd_surrogate(args) -> int:
    """Score the analytical surrogate against full-detail simulation."""
    from repro.harness.surrogate import (default_grid, render_report,
                                         validation_report)
    if args.workloads:
        workloads = args.workloads.split(",")
    elif args.quick:
        workloads = ["gcc", "swim"]
    else:
        workloads = sorted(WORKLOADS)
    budget = args.instructions
    if budget is None:
        budget = 8_000 if args.quick else 20_000
    report = validation_report(
        workloads, default_grid(), max_instructions=budget,
        execution=_execution(args),
        progress=(lambda line: print(f"  {line}...", file=sys.stderr))
        if args.progress else None)
    print(render_report(report))
    if args.json:
        _write_json(args.json, report)
    return 0 if report["within_bound"] else 1


def cmd_bench(args) -> int:
    from repro.harness.bench import (profile_serial_cell, render_summary,
                                     run_bench)

    if args.profile:
        budget = (args.instructions if args.instructions is not None
                  else 20_000)
        workload = (args.workloads.split(",")[0] if args.workloads
                    else "gcc")
        print(profile_serial_cell(workload=workload,
                                  max_instructions=budget))
        return 0
    path, data = run_bench(
        jobs=args.jobs, quick=args.quick,
        workloads=args.workloads.split(",") if args.workloads else None,
        max_instructions=args.instructions,
        out_dir=args.out, compare=args.compare or None,
        backend=args.backend,
        progress=lambda line: print(f"  {line}...", file=sys.stderr))
    print(render_summary(data))
    print(f"\nartifact written to {path}", file=sys.stderr)
    if args.json:
        _write_json(args.json, data)
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.harness.cache import GCPolicy
    from repro.service import ServiceConfig, SimulationService, run_server

    weights = {}
    if args.weights:
        for pair in args.weights.split(","):
            tenant, _sep, weight = pair.partition("=")
            weights[tenant.strip()] = float(weight or 1.0)
    config = ServiceConfig(
        store_dir=args.store, jobs=_jobs(args, default=2),
        backend=args.backend,
        max_depth=args.max_depth, max_tenant_depth=args.max_tenant_depth,
        default_timeout=args.timeout, weights=weights,
        journal_fsync=not args.no_fsync,
        gc_policy=GCPolicy(max_bytes=args.gc_bytes or None,
                           max_age_seconds=args.gc_age or None))
    service = SimulationService(config)
    resumed = service.metrics.counters["resumed"]
    if resumed:
        print(f"resumed {resumed} incomplete job(s) from the journal",
              file=sys.stderr)

    def ready(server):
        print(f"serving on http://{server.host}:{server.port} "
              f"(store: {config.store_dir})", file=sys.stderr, flush=True)

    try:
        asyncio.run(run_server(service, host=args.host, port=args.port,
                               ready=ready))
    except KeyboardInterrupt:
        pass
    return 0


def _service_client(args):
    from repro.service import ServiceClient
    return ServiceClient(args.host, args.port)


def cmd_submit(args) -> int:
    client = _service_client(args)
    if args.body:
        with open(args.body) as handle:
            body = json.load(handle)
    else:
        if not args.workload:
            raise SystemExit("submit needs a workload (or --body FILE)")
        body = {"kind": args.kind, "workload": args.workload,
                "config": {"iq": args.iq, "size": args.size,
                           "segment_size": args.segment_size,
                           "chains": args.chains, "variant": args.variant},
                "max_instructions": args.instructions}
        if args.trace_format:
            body["trace"] = args.trace_format
        if args.kind == "sample":
            body["sampling"] = {"windows": args.windows,
                                "warmup": args.warmup,
                                "measure": args.measure}
    if args.timeout:
        body["timeout"] = args.timeout
    job = client.submit(body, tenant=args.tenant)
    print(f"{job['id']}  {job['state']}"
          + (f"  (dedupe: {job['dedupe']})" if job.get("dedupe") else ""))
    if args.watch:
        for event in client.watch(job["id"]):
            if event["event"] == "tick":
                print(f"  cycle {event.get('cycle', 0):>9,}  "
                      f"committed {event.get('committed', 0):>9,}",
                      file=sys.stderr)
    if args.wait or args.watch:
        final = client.wait(job["id"])
        print(f"{job['id']}  {final['state']}"
              + (f"  error: {final['error']}" if final.get("error") else ""))
        if final["state"] == "done":
            record = client.result(job["id"])
            result = record.get("result") or {}
            if "ipc" in result:
                print(f"  IPC {result['ipc']:.4f}  "
                      f"({result.get('cycles', 0):,} cycles)")
            if args.json:
                _write_json(args.json, record)
        return 0 if final["state"] == "done" else 1
    return 0


def cmd_status(args) -> int:
    client = _service_client(args)
    if args.job:
        record = client.status(args.job)
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    jobs = client.jobs(tenant=args.for_tenant or None)
    for record in jobs:
        dedupe = f"  [{record['dedupe']}]" if record.get("dedupe") else ""
        print(f"{record['id']}  {record['state']:<9}  "
              f"{record['tenant']:<10}  {record['kind']}{dedupe}")
    snapshot = client.metrics()
    gauges = snapshot["gauges"]
    print(f"\nqueued {gauges['queued']}  running {gauges['running']}  "
          f"tracked {gauges['jobs_tracked']}", file=sys.stderr)
    return 0


def cmd_cancel(args) -> int:
    client = _service_client(args)
    answer = client.cancel(args.job)
    print(f"{args.job}  {answer['state']}"
          + ("" if answer["cancelled"] else "  (already terminal)"))
    return 0 if answer["cancelled"] else 1


def cmd_fetch(args) -> int:
    client = _service_client(args)
    if args.artifact:
        data = client.fetch_artifact(args.job)
        out = args.out or f"{args.job}-trace"
        with open(out, "wb") as handle:
            handle.write(data)
        print(f"{len(data)} bytes written to {out}")
        return 0
    record = client.result(args.job)
    if args.out:
        _write_json(args.out, record)
    else:
        print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Segmented dependence-chain IQ reproduction "
                    "(Raasch/Binkert/Reinhardt, ISCA 2002)")
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_parent()
    config = _config_parent()

    sub.add_parser("list", help="list benchmark analogs")

    run_parser = sub.add_parser("run", help="simulate one benchmark",
                                parents=[common, config])
    run_parser.add_argument("workload", choices=sorted(WORKLOADS))
    run_parser.add_argument("--stats", action="store_true",
                            help="dump every statistic")
    run_parser.add_argument("--check-invariants", action="store_true",
                            help="run per-cycle pipeline invariant checks")

    sample_parser = sub.add_parser(
        "sample", help="sampled simulation: checkpoints + interval windows",
        parents=[common, config])
    sample_parser.add_argument("workload", choices=sorted(WORKLOADS))
    sample_parser.add_argument("--windows", type=int, default=10,
                               help="number of measurement windows")
    sample_parser.add_argument("--warmup", type=int, default=500,
                               help="detailed warmup insts per window")
    sample_parser.add_argument("--measure", type=int, default=500,
                               help="measured insts per window")
    sample_parser.add_argument("--scale", type=int, default=8,
                               help="workload scale factor (longer stream)")
    sample_parser.add_argument("--seed", type=int, default=0,
                               help="window-placement jitter seed")
    sample_parser.add_argument("--compare-full", action="store_true",
                               help="also run full detail; report the error")

    sweep_parser = sub.add_parser("sweep", help="IQ size sweep",
                                  parents=[common])
    sweep_parser.add_argument("workload", choices=sorted(WORKLOADS))
    sweep_parser.add_argument("--sizes", default="32,64,128,256,512")
    sweep_parser.add_argument("--instructions", type=int, default=None)
    sweep_parser.add_argument("--journal", default="", metavar="PATH",
                              help="record cell states in a JSONL journal "
                                   "so a killed sweep resumes without "
                                   "re-running finished cells (needs the "
                                   "cache; see docs/fabric.md)")

    disasm_parser = sub.add_parser("disasm", help="print kernel assembly")
    disasm_parser.add_argument("workload", choices=sorted(WORKLOADS))

    trace_parser = sub.add_parser(
        "trace", help="structured event trace (ascii / chrome / jsonl)",
        parents=[common, config])
    trace_parser.add_argument("workload", choices=sorted(WORKLOADS))
    trace_parser.add_argument("--format", default="ascii",
                              choices=["ascii", "chrome", "jsonl"],
                              help="ascii pipeline diagram, Chrome "
                                   "trace_event JSON, or JSONL stream")
    trace_parser.add_argument("--out", default="",
                              help="output file for chrome/jsonl formats "
                                   "(default trace.json / trace.jsonl)")
    trace_parser.add_argument("--start", type=int, default=200,
                              help="first dynamic seq to display (ascii)")
    trace_parser.add_argument("--count", type=int, default=32,
                              help="instructions to display (ascii)")
    trace_parser.add_argument("--interval", type=int, default=100,
                              help="metrics sampling interval (cycles)")

    segments_parser = sub.add_parser(
        "segments", help="segment-occupancy heatmap (segmented IQ)",
        parents=[common])
    segments_parser.add_argument("workload", choices=sorted(WORKLOADS))
    segments_parser.add_argument("--size", type=int, default=512)
    segments_parser.add_argument("--chains", default="128")
    segments_parser.add_argument("--variant", default="comb",
                                 choices=["base", "hmp", "lrp", "comb"])
    segments_parser.add_argument("--interval", type=int, default=50)
    segments_parser.add_argument("--instructions", type=int, default=None)

    reproduce_parser = sub.add_parser(
        "reproduce", help="regenerate a paper table/figure",
        parents=[common])
    reproduce_parser.add_argument(
        "experiment", choices=["table2", "figure2", "figure3", "headline"])
    reproduce_parser.add_argument(
        "--workloads", default="",
        help="comma-separated benchmark subset (default: all eight)")
    reproduce_parser.add_argument("--budget", type=float, default=1.0,
                                  help="instruction-budget multiplier")

    bench_parser = sub.add_parser(
        "bench", help="measure simulator throughput and sweep scaling",
        parents=[common])
    bench_parser.add_argument("--quick", action="store_true",
                              help="small grid / budgets (CI smoke mode)")
    bench_parser.add_argument("--workloads", default="",
                              help="comma-separated workload subset")
    bench_parser.add_argument("--instructions", type=int, default=None,
                              help="per-run instruction budget")
    bench_parser.add_argument("--out", default=".",
                              help="directory for BENCH_<date>.json")
    bench_parser.add_argument("--compare", default="",
                              help="older BENCH_*.json to diff against")
    bench_parser.add_argument("--profile", action="store_true",
                              help="cProfile one serial cell (top-20 "
                                   "cumulative) instead of the full bench")

    validate_parser = sub.add_parser(
        "validate",
        help="differential-oracle fuzzing across every IQ model",
        parents=[common])
    validate_parser.add_argument("--seed", type=int, default=0)
    validate_parser.add_argument("--programs", type=int, default=50,
                                 help="number of random programs to fuzz")
    validate_parser.add_argument("--models", default="",
                                 help="comma-separated model subset "
                                      "(default: every registered model)")
    validate_parser.add_argument("--length", type=int, default=40,
                                 help="loop-body units per program")
    validate_parser.add_argument("--iterations", type=int, default=3,
                                 help="outer-loop iterations per program")
    validate_parser.add_argument("--chain-bias", type=float, default=0.5,
                                 help="dependence-chain depth bias [0,1]")
    validate_parser.add_argument("--miss-bias", type=float, default=0.25,
                                 help="fraction of memory ops aimed at the "
                                      "L1-missing region")
    validate_parser.add_argument("--no-invariants", action="store_true",
                                 help="skip per-cycle invariant checks")
    validate_parser.add_argument("--no-shrink", action="store_true",
                                 help="report failures without shrinking")
    validate_parser.add_argument("--verbose", action="store_true",
                                 help="print each check as it runs")

    surrogate_parser = sub.add_parser(
        "surrogate",
        help="validate the analytical IPC surrogate against simulation",
        parents=[common])
    surrogate_parser.add_argument("--workloads", default="",
                                  help="comma-separated workload subset "
                                       "(default: all; --quick: gcc,swim)")
    surrogate_parser.add_argument("--instructions", type=int, default=None,
                                  help="per-cell instruction budget "
                                       "(default: 20000; --quick: 8000)")
    surrogate_parser.add_argument("--quick", action="store_true",
                                  help="small grid / budgets "
                                       "(CI smoke mode)")

    serve_parser = sub.add_parser(
        "serve", help="start the simulation job service (docs/service.md)",
        parents=[common])
    serve_parser.add_argument("--store", default=".repro-service",
                              help="service state directory (journal, "
                                   "cache, results, artifacts)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8421,
                              help="listen port (0 picks a free one)")
    serve_parser.add_argument("--max-depth", type=int, default=64,
                              help="pending-job bound before 429s")
    serve_parser.add_argument("--max-tenant-depth", type=int, default=32,
                              help="per-tenant pending-job bound")
    serve_parser.add_argument("--timeout", type=float, default=600.0,
                              help="per-job wall-clock budget (seconds)")
    serve_parser.add_argument("--weights", default="",
                              help="fair-share weights, e.g. 'ci=2,dev=1'")
    serve_parser.add_argument("--gc-bytes", type=int,
                              default=256 * 1024 * 1024,
                              help="result/cache store size bound (0: off)")
    serve_parser.add_argument("--gc-age", type=float, default=7 * 86400,
                              help="result/cache entry age bound (0: off)")
    serve_parser.add_argument("--no-fsync", action="store_true",
                              help="skip fsync on journal appends (faster, "
                                   "loses crash-safety)")

    client_common = argparse.ArgumentParser(add_help=False)
    client_common.add_argument("--host", default="127.0.0.1")
    client_common.add_argument("--port", type=int, default=8421)
    client_common.add_argument("--tenant", default="default")

    submit_parser = sub.add_parser(
        "submit", help="submit a job to a served instance",
        parents=[client_common, config])
    submit_parser.add_argument("workload", nargs="?", default="",
                               choices=sorted(WORKLOADS) + [""])
    submit_parser.add_argument("--kind", default="run",
                               choices=["run", "sample", "surrogate"])
    submit_parser.add_argument("--body", default="", metavar="FILE",
                               help="raw JSON submission body (any kind, "
                                    "including sweep); overrides the flags")
    submit_parser.add_argument("--trace-format", default="",
                               choices=["", "jsonl", "chrome"],
                               help="also record a trace artifact "
                                    "(fetch with 'fetch --artifact')")
    submit_parser.add_argument("--timeout", type=float, default=0.0,
                               help="per-job wall-clock budget override")
    submit_parser.add_argument("--windows", type=int, default=10)
    submit_parser.add_argument("--warmup", type=int, default=500)
    submit_parser.add_argument("--measure", type=int, default=500)
    submit_parser.add_argument("--wait", action="store_true",
                               help="block until the job finishes")
    submit_parser.add_argument("--watch", action="store_true",
                               help="stream heartbeats until it finishes")
    submit_parser.add_argument("--json", default="", metavar="PATH",
                               help="write the final result record here")

    status_parser = sub.add_parser(
        "status", help="one job's record, or the whole job table",
        parents=[client_common])
    status_parser.add_argument("job", nargs="?", default="")
    status_parser.add_argument("--for-tenant", default="",
                               help="filter the table to one tenant")

    cancel_parser = sub.add_parser("cancel", help="cancel a job",
                                   parents=[client_common])
    cancel_parser.add_argument("job")

    fetch_parser = sub.add_parser(
        "fetch", help="download a job's result (or its trace artifact)",
        parents=[client_common])
    fetch_parser.add_argument("job")
    fetch_parser.add_argument("--artifact", action="store_true",
                              help="download the trace artifact instead "
                                   "of the result record")
    fetch_parser.add_argument("--out", default="",
                              help="write to this path (default: stdout "
                                   "for results, <job>-trace for artifacts)")

    args = parser.parse_args(argv)
    if getattr(args, "kernels", ""):
        # Exported (not just set_backend) so process-pool workers inherit
        # the choice.  The compiled stat/event primitives are selected at
        # interpreter start from REPRO_KERNELS, so --kernels py switches
        # the IQ engine here but not primitives already imported; use the
        # environment variable for a fully pure-Python process.
        os.environ["REPRO_KERNELS"] = args.kernels
        from repro.core.segmented.kernels import set_backend
        set_backend(args.kernels)
    handler = {"list": cmd_list, "run": cmd_run, "sample": cmd_sample,
               "sweep": cmd_sweep, "disasm": cmd_disasm, "trace": cmd_trace,
               "segments": cmd_segments, "reproduce": cmd_reproduce,
               "validate": cmd_validate, "bench": cmd_bench,
               "surrogate": cmd_surrogate, "serve": cmd_serve,
               "submit": cmd_submit, "status": cmd_status,
               "cancel": cmd_cancel, "fetch": cmd_fetch,
               }[args.command]
    if args.command in ("submit", "status", "cancel", "fetch"):
        # Client commands talk to a server that may be down, saturated,
        # or unaware of the job id — operational conditions, not bugs,
        # so answer with a message and exit code instead of a traceback.
        from repro.service.client import Backpressure, ServiceError
        try:
            return handler(args)
        except Backpressure as exc:
            print(f"error: {exc} (queue saturated; retry later)",
                  file=sys.stderr)
            return 1
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except ConnectionError as exc:
            print(f"error: cannot reach the server ({exc}); "
                  "is `repro serve` running?", file=sys.stderr)
            return 1
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
