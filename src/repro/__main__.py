"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``    — show the benchmark analogs and their characters
* ``run``     — simulate one benchmark under one configuration
* ``sample``  — checkpoint-based interval sampling (docs/sampling.md)
* ``sweep``   — IPC-vs-IQ-size curves (Figure 3 style) for one benchmark
* ``disasm``  — print a benchmark kernel's assembly listing
* ``validate`` — differential-oracle fuzzing campaign (docs/validation.md)
* ``bench``   — simulator throughput + sweep scaling (docs/performance.md)

Grid-shaped commands (``sweep``, ``reproduce``, ``validate``) accept
``--jobs N`` to fan independent simulations over a process pool, and
``sweep``/``reproduce`` consult an on-disk result cache unless
``--no-cache`` is given.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import ascii_series_plot, configs, run_workload
from repro.workloads import WORKLOADS


def _parse_chains(value: str):
    return None if value in ("unlimited", "none") else int(value)


def _params_from_args(args) -> "ProcessorParams":
    if args.iq == "ideal":
        return configs.ideal(args.size)
    if args.iq == "segmented":
        return configs.segmented(args.size, _parse_chains(args.chains),
                                 args.variant,
                                 segment_size=args.segment_size)
    if args.iq == "prescheduled":
        lines = max(1, (args.size - 32) // 12)
        return configs.prescheduled(lines)
    if args.iq == "fifo":
        return configs.fifo(args.size, depth=args.segment_size)
    raise SystemExit(f"unknown IQ kind {args.iq!r}")


def cmd_list(_args) -> int:
    width = max(len(name) for name in WORKLOADS)
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name]
        group = "FP " if spec.is_fp else "INT"
        print(f"{name:<{width}}  [{group}]  ~{spec.default_instructions:>6} "
              f"insts  {spec.description}")
    return 0


def _heartbeat(tick) -> None:
    """Progress line for long runs (``--progress N``)."""
    print(f"  [{tick.elapsed_seconds:6.1f}s] cycle {tick.cycle:>9,}  "
          f"committed {tick.committed:>9,}  "
          f"{tick.kcycles_per_sec:6.1f} kcycles/s", file=sys.stderr)


def cmd_run(args) -> int:
    params = _params_from_args(args)
    if args.check_invariants:
        params = params.replace(check_invariants=True)
    result = run_workload(args.workload, params,
                          config_label=args.iq,
                          max_instructions=args.instructions,
                          progress=_heartbeat if args.progress else None,
                          progress_interval=args.progress or 5.0)
    print(result)
    stats = result.stats
    print(f"  branch accuracy : {100 * result.branch_accuracy:.1f}%")
    loads = stats.get("lsq.loads", 0)
    if loads:
        delayed = stats.get("l1d.delayed_hits", 0)
        misses = stats.get("l1d.misses", 0)
        print(f"  loads           : {loads:.0f} "
              f"({misses:.0f} misses, {delayed:.0f} delayed hits)")
    if args.iq == "segmented":
        print(f"  chains          : avg {result.chains_avg:.1f}, "
              f"peak {result.chains_peak:.0f}")
        print(f"  promotions      : {stats.get('iq.promotions', 0):.0f} "
              f"(+{stats.get('iq.pushdowns', 0):.0f} pushdowns)")
        print(f"  deadlock events : "
              f"{stats.get('iq.deadlock_recoveries', 0):.0f}")
    if args.stats:
        for key in sorted(stats):
            print(f"  {key:<40} {stats[key]:.3f}")
    return 0


def cmd_sample(args) -> int:
    import json
    import time

    from repro.sampling import (CheckpointStore, SamplingConfig,
                                sample_workload)

    params = _params_from_args(args)
    sampling = SamplingConfig(num_windows=args.windows,
                              warmup_instructions=args.warmup,
                              measure_instructions=args.measure,
                              seed=args.seed)
    store = None if args.no_cache else CheckpointStore()
    started = time.perf_counter()
    report = sample_workload(
        args.workload, params, sampling, config_label=args.iq,
        scale=args.scale, max_instructions=args.instructions,
        jobs=args.jobs, store=store,
        progress=lambda line: print(f"  {line}...", file=sys.stderr))
    sampled_seconds = time.perf_counter() - started
    print(f"{report.workload} [{report.config}]  "
          f"sampled IPC {report.ipc_estimate:.3f}  "
          f"({report.confidence:.0%} CI "
          f"[{report.ipc_ci_low:.3f}, {report.ipc_ci_high:.3f}], "
          f"{report.estimator} estimator)")
    print(f"  windows  : {len(report.windows)} x "
          f"{sampling.measure_instructions} insts measured "
          f"(+{sampling.warmup_instructions} warmup each), "
          f"{report.dropped_windows} dropped")
    print(f"  detail   : {report.detailed_instructions:,} of "
          f"{report.total_instructions:,} insts "
          f"({100 * report.detail_fraction:.1f}%), "
          f"{report.detailed_cycles:,} detailed cycles, "
          f"{sampled_seconds:.1f}s wall")
    data = report.to_dict()
    data["sampled_seconds"] = round(sampled_seconds, 3)
    if args.compare_full:
        started = time.perf_counter()
        full = run_workload(args.workload, params, config_label=args.iq,
                            scale=args.scale,
                            max_instructions=args.instructions)
        full_seconds = time.perf_counter() - started
        error = ((report.ipc_estimate - full.ipc) / full.ipc
                 if full.ipc else 0.0)
        ratio = (full.cycles / report.detailed_cycles
                 if report.detailed_cycles else 0.0)
        print(f"  full     : IPC {full.ipc:.3f} in {full_seconds:.1f}s — "
              f"sampled error {100 * error:+.2f}%, "
              f"{ratio:.1f}x fewer detailed cycles")
        data["compare_full"] = {
            "full_ipc": full.ipc, "full_cycles": full.cycles,
            "full_seconds": round(full_seconds, 3),
            "ipc_error": error, "detail_cycle_ratio": ratio}
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
        print(f"\nraw data written to {args.json}", file=sys.stderr)
    return 0


def _make_cache(args):
    """On-disk result cache unless ``--no-cache`` was given."""
    if getattr(args, "no_cache", False):
        return None
    from repro.harness.cache import ResultCache
    return ResultCache()


def cmd_sweep(args) -> int:
    from repro.harness.parallel import (ParallelExecutor, RunSpec,
                                        raise_on_errors)

    sizes = [int(s) for s in args.sizes.split(",")]
    factories = [
        ("ideal", configs.ideal),
        ("segmented-128ch",
         lambda size: configs.segmented(size, 128, "comb")),
        ("segmented-64ch",
         lambda size: configs.segmented(size, 64, "comb"))]
    specs = [RunSpec(args.workload, factory(size),
                     config_label=f"{label}@{size}",
                     max_instructions=args.instructions)
             for label, factory in factories for size in sizes]
    executor = ParallelExecutor(args.jobs, cache=_make_cache(args))
    cells = executor.run_specs(specs)
    raise_on_errors(cells, "sweep")
    series = {label: {} for label, _ in factories}
    for spec, result in zip(specs, cells):
        label, size = spec.config_label.rsplit("@", 1)
        series[label][int(size)] = result.ipc
        print(f"  {label} @{size}: IPC={result.ipc:.3f}", file=sys.stderr)
    print(ascii_series_plot(series,
                            title=f"IPC vs IQ size — {args.workload}"))
    return 0


def cmd_disasm(args) -> int:
    program = WORKLOADS[args.workload].build(1)
    print(program.disassemble())
    return 0


def cmd_trace(args) -> int:
    from repro.harness.trace import render_pipeline_trace, stage_latency_summary
    from repro.isa import execute
    from repro.pipeline import Processor

    params = _params_from_args(args)
    spec = WORKLOADS[args.workload]
    program = spec.build(1)
    budget = args.instructions or spec.default_instructions
    stream = list(execute(program, max_instructions=budget))
    processor = Processor(params, iter(stream))
    processor.warm_code(program)
    processor.run(max_cycles=5_000_000)
    print(render_pipeline_trace(stream, start_seq=args.start,
                                count=args.count))
    print()
    print(stage_latency_summary(stream))
    return 0


def cmd_reproduce(args) -> int:
    from repro.harness.experiments import EXPERIMENTS, save_data

    experiment = EXPERIMENTS[args.experiment]
    workloads = (args.workloads.split(",") if args.workloads else None)
    report, data = experiment.run(
        workloads=workloads, budget_factor=args.budget,
        jobs=args.jobs, cache=_make_cache(args),
        progress=lambda label: print(f"  running {label}...",
                                     file=sys.stderr))
    print(report)
    if args.json:
        save_data(data, args.json)
        print(f"\nraw data written to {args.json}", file=sys.stderr)
    return 0


def cmd_validate(args) -> int:
    from repro.validation import FuzzProfile, run_campaign, validation_models

    from repro.common.errors import ConfigurationError

    profile = FuzzProfile(
        length=args.length, loop_iterations=args.iterations,
        chain_bias=args.chain_bias, miss_bias=args.miss_bias)
    try:
        profile.validate()
    except ConfigurationError as exc:
        raise SystemExit(f"bad fuzz profile: {exc}")
    models = validation_models()
    if args.models:
        wanted = args.models.split(",")
        unknown = [name for name in wanted if name not in models]
        if unknown:
            raise SystemExit(f"unknown model(s) {','.join(unknown)}; "
                             f"known: {','.join(models)}")
        models = {name: models[name] for name in wanted}
    report = run_campaign(
        seed=args.seed, num_programs=args.programs, profile=profile,
        models=models, check_invariants=not args.no_invariants,
        shrink=not args.no_shrink, jobs=args.jobs,
        progress=(lambda line: print(f"  {line}", file=sys.stderr))
        if args.verbose else None)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_bench(args) -> int:
    from repro.harness.bench import render_summary, run_bench

    path, data = run_bench(
        jobs=args.jobs, quick=args.quick,
        workloads=args.workloads.split(",") if args.workloads else None,
        max_instructions=args.instructions,
        out_dir=args.out, compare=args.compare or None,
        progress=lambda line: print(f"  {line}...", file=sys.stderr))
    print(render_summary(data))
    print(f"\nartifact written to {path}", file=sys.stderr)
    return 0


def cmd_segments(args) -> int:
    from repro.harness.trace import collect_segment_samples, segment_heatmap
    from repro.isa import execute
    from repro.pipeline import Processor

    params = configs.segmented(args.size, _parse_chains(args.chains),
                               args.variant)
    spec = WORKLOADS[args.workload]
    program = spec.build(1)
    budget = args.instructions or spec.default_instructions
    processor = Processor(params, execute(program, max_instructions=budget))
    processor.warm_code(program)
    samples = collect_segment_samples(processor, interval=args.interval)
    print(f"segment occupancy over time — {args.workload} "
          f"(IPC {processor.ipc:.2f})\n")
    print(segment_heatmap(samples, params.iq.segment_size))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Segmented dependence-chain IQ reproduction "
                    "(Raasch/Binkert/Reinhardt, ISCA 2002)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark analogs")

    run_parser = sub.add_parser("run", help="simulate one benchmark")
    run_parser.add_argument("workload", choices=sorted(WORKLOADS))
    run_parser.add_argument("--iq", default="segmented",
                            choices=["ideal", "segmented", "prescheduled",
                                     "fifo"])
    run_parser.add_argument("--size", type=int, default=512)
    run_parser.add_argument("--segment-size", type=int, default=32)
    run_parser.add_argument("--chains", default="128",
                            help="chain wires, or 'unlimited'")
    run_parser.add_argument("--variant", default="comb",
                            choices=["base", "hmp", "lrp", "comb"])
    run_parser.add_argument("--instructions", type=int, default=None)
    run_parser.add_argument("--stats", action="store_true",
                            help="dump every statistic")
    run_parser.add_argument("--check-invariants", action="store_true",
                            help="run per-cycle pipeline invariant checks")
    run_parser.add_argument("--progress", type=float, default=0.0,
                            metavar="SECONDS",
                            help="print a heartbeat (cycles, kcycles/s) "
                                 "every N seconds")

    sample_parser = sub.add_parser(
        "sample", help="sampled simulation: checkpoints + interval windows")
    sample_parser.add_argument("workload", choices=sorted(WORKLOADS))
    sample_parser.add_argument("--iq", default="segmented",
                               choices=["ideal", "segmented", "prescheduled",
                                        "fifo"])
    sample_parser.add_argument("--size", type=int, default=512)
    sample_parser.add_argument("--segment-size", type=int, default=32)
    sample_parser.add_argument("--chains", default="128",
                               help="chain wires, or 'unlimited'")
    sample_parser.add_argument("--variant", default="comb",
                               choices=["base", "hmp", "lrp", "comb"])
    sample_parser.add_argument("--windows", type=int, default=10,
                               help="number of measurement windows")
    sample_parser.add_argument("--warmup", type=int, default=500,
                               help="detailed warmup insts per window")
    sample_parser.add_argument("--measure", type=int, default=500,
                               help="measured insts per window")
    sample_parser.add_argument("--scale", type=int, default=8,
                               help="workload scale factor (longer stream)")
    sample_parser.add_argument("--seed", type=int, default=0,
                               help="window-placement jitter seed")
    sample_parser.add_argument("--instructions", type=int, default=None,
                               help="instruction budget override")
    sample_parser.add_argument("--jobs", type=int, default=1,
                               help="parallel window workers")
    sample_parser.add_argument("--compare-full", action="store_true",
                               help="also run full detail; report the error")
    sample_parser.add_argument("--json", default="",
                               help="also write raw data to this file")
    sample_parser.add_argument("--no-cache", action="store_true",
                               help="skip the on-disk checkpoint store")

    sweep_parser = sub.add_parser("sweep", help="IQ size sweep")
    sweep_parser.add_argument("workload", choices=sorted(WORKLOADS))
    sweep_parser.add_argument("--sizes", default="32,64,128,256,512")
    sweep_parser.add_argument("--instructions", type=int, default=None)
    sweep_parser.add_argument("--jobs", type=int, default=1,
                              help="parallel simulation workers")
    sweep_parser.add_argument("--no-cache", action="store_true",
                              help="skip the on-disk result cache")

    disasm_parser = sub.add_parser("disasm", help="print kernel assembly")
    disasm_parser.add_argument("workload", choices=sorted(WORKLOADS))

    trace_parser = sub.add_parser("trace",
                                  help="per-instruction pipeline diagram")
    trace_parser.add_argument("workload", choices=sorted(WORKLOADS))
    trace_parser.add_argument("--iq", default="segmented",
                              choices=["ideal", "segmented", "prescheduled",
                                       "distance", "fifo"])
    trace_parser.add_argument("--size", type=int, default=512)
    trace_parser.add_argument("--segment-size", type=int, default=32)
    trace_parser.add_argument("--chains", default="128")
    trace_parser.add_argument("--variant", default="comb",
                              choices=["base", "hmp", "lrp", "comb"])
    trace_parser.add_argument("--instructions", type=int, default=2000)
    trace_parser.add_argument("--start", type=int, default=200,
                              help="first dynamic seq to display")
    trace_parser.add_argument("--count", type=int, default=32)

    segments_parser = sub.add_parser(
        "segments", help="segment-occupancy heatmap (segmented IQ)")
    segments_parser.add_argument("workload", choices=sorted(WORKLOADS))
    segments_parser.add_argument("--size", type=int, default=512)
    segments_parser.add_argument("--chains", default="128")
    segments_parser.add_argument("--variant", default="comb",
                                 choices=["base", "hmp", "lrp", "comb"])
    segments_parser.add_argument("--interval", type=int, default=50)
    segments_parser.add_argument("--instructions", type=int, default=None)

    reproduce_parser = sub.add_parser(
        "reproduce", help="regenerate a paper table/figure")
    reproduce_parser.add_argument(
        "experiment", choices=["table2", "figure2", "figure3", "headline"])
    reproduce_parser.add_argument(
        "--workloads", default="",
        help="comma-separated benchmark subset (default: all eight)")
    reproduce_parser.add_argument("--budget", type=float, default=1.0,
                                  help="instruction-budget multiplier")
    reproduce_parser.add_argument("--json", default="",
                                  help="also write raw data to this file")
    reproduce_parser.add_argument("--jobs", type=int, default=1,
                                  help="parallel simulation workers")
    reproduce_parser.add_argument("--no-cache", action="store_true",
                                  help="skip the on-disk result cache")

    bench_parser = sub.add_parser(
        "bench", help="measure simulator throughput and sweep scaling")
    bench_parser.add_argument("--quick", action="store_true",
                              help="small grid / budgets (CI smoke mode)")
    bench_parser.add_argument("--jobs", type=int, default=None,
                              help="pool size for the sweep phase "
                                   "(default: all cores)")
    bench_parser.add_argument("--workloads", default="",
                              help="comma-separated workload subset")
    bench_parser.add_argument("--instructions", type=int, default=None,
                              help="per-run instruction budget")
    bench_parser.add_argument("--out", default=".",
                              help="directory for BENCH_<date>.json")
    bench_parser.add_argument("--compare", default="",
                              help="older BENCH_*.json to diff against")

    validate_parser = sub.add_parser(
        "validate",
        help="differential-oracle fuzzing across every IQ model")
    validate_parser.add_argument("--seed", type=int, default=0)
    validate_parser.add_argument("--programs", type=int, default=50,
                                 help="number of random programs to fuzz")
    validate_parser.add_argument("--models", default="",
                                 help="comma-separated model subset "
                                      "(default: all five)")
    validate_parser.add_argument("--length", type=int, default=40,
                                 help="loop-body units per program")
    validate_parser.add_argument("--iterations", type=int, default=3,
                                 help="outer-loop iterations per program")
    validate_parser.add_argument("--chain-bias", type=float, default=0.5,
                                 help="dependence-chain depth bias [0,1]")
    validate_parser.add_argument("--miss-bias", type=float, default=0.25,
                                 help="fraction of memory ops aimed at the "
                                      "L1-missing region")
    validate_parser.add_argument("--no-invariants", action="store_true",
                                 help="skip per-cycle invariant checks")
    validate_parser.add_argument("--no-shrink", action="store_true",
                                 help="report failures without shrinking")
    validate_parser.add_argument("--verbose", action="store_true",
                                 help="print each check as it runs")
    validate_parser.add_argument("--jobs", type=int, default=1,
                                 help="parallel campaign workers")

    args = parser.parse_args(argv)
    handler = {"list": cmd_list, "run": cmd_run, "sample": cmd_sample,
               "sweep": cmd_sweep, "disasm": cmd_disasm, "trace": cmd_trace,
               "segments": cmd_segments, "reproduce": cmd_reproduce,
               "validate": cmd_validate, "bench": cmd_bench,
               }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
