"""Failure shrinking: reduce a divergent fuzz program to a minimal one.

Classic delta debugging needs care here because instruction indices *are*
branch targets: deleting instructions would re-aim every branch.  Both
reduction passes therefore preserve program length and replace
instructions in place:

1. **halt-fill truncation** — binary-search the shortest prefix that
   still fails, filling the tail with ``HALT`` (any branch into the tail
   halts immediately, which is always structurally valid);
2. **nop-out ddmin** — repeatedly try replacing chunks of the surviving
   prefix with ``NOP`` at finer and finer granularity, keeping each
   replacement that still fails.

The result is a program whose *active* instruction count (non-NOP,
pre-halt) is typically a handful of instructions, small enough to eyeball
against the pipeline trace.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, List

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

_HALT = Instruction(opcode=Opcode.HALT)
_NOP = Instruction(opcode=Opcode.NOP)


def _with_instructions(program: Program,
                       instructions: List[Instruction]) -> Program:
    candidate = dc_replace(program, instructions=instructions,
                           name=f"{program.name}-shrunk")
    candidate.validate()
    return candidate


def _halt_filled(program: Program, keep: int) -> Program:
    """Keep the first ``keep`` instructions, halt-fill the rest."""
    body = list(program.instructions[:keep])
    body += [_HALT] * (len(program.instructions) - keep)
    return _with_instructions(program, body)


def active_length(program: Program) -> int:
    """Instructions that still do work: non-NOP before the first tail halt."""
    instructions = program.instructions
    end = len(instructions)
    while end > 0 and instructions[end - 1].opcode in (Opcode.HALT,
                                                       Opcode.NOP):
        end -= 1
    return sum(1 for inst in instructions[:end]
               if inst.opcode is not Opcode.NOP) + 1    # + the live halt


def shrink_program(program: Program,
                   fails: Callable[[Program], bool],
                   max_attempts: int = 2000) -> Program:
    """Shrink ``program`` while ``fails`` keeps returning True for it.

    ``fails`` must be True for ``program`` itself (the caller observed the
    failure); the returned program is the smallest variant found that
    still fails.  ``max_attempts`` bounds total predicate invocations so
    a flaky predicate cannot loop forever.
    """
    attempts = 0

    def still_fails(candidate: Program) -> bool:
        nonlocal attempts
        attempts += 1
        return fails(candidate)

    # Pass 1: binary search the shortest failing halt-filled prefix.
    lo, hi = 0, len(program.instructions)     # fails(hi) known, lo unknown
    best = program
    while lo < hi and attempts < max_attempts:
        mid = (lo + hi) // 2
        candidate = _halt_filled(program, mid)
        if still_fails(candidate):
            best, hi = candidate, mid
        else:
            lo = mid + 1

    # Pass 2: ddmin-style NOP-out over the surviving prefix.
    body = list(best.instructions)
    prefix = hi
    chunk = max(1, prefix // 2)
    while chunk >= 1 and attempts < max_attempts:
        reduced = False
        start = 0
        while start < prefix and attempts < max_attempts:
            window = range(start, min(start + chunk, prefix))
            saved = [body[i] for i in window]
            if all(inst.opcode is Opcode.NOP for inst in saved):
                start += chunk
                continue
            for i in window:
                body[i] = _NOP
            candidate = _with_instructions(program, list(body))
            if still_fails(candidate):
                best = candidate
                reduced = True
            else:
                for offset, i in enumerate(window):
                    body[i] = saved[offset]
            start += chunk
        if not reduced:
            chunk //= 2
    return best
