"""Differential-oracle validation subsystem (see docs/validation.md).

Three layers:

* :mod:`repro.validation.oracle` — diff any program's pipeline run
  against the in-order architectural model;
* :mod:`repro.validation.generator` + :mod:`repro.validation.shrink` —
  seeded random programs and minimal-reproducer reduction;
* :mod:`repro.validation.invariants` — per-cycle pipeline invariant
  checks, enabled by ``ProcessorParams.check_invariants``.

:mod:`repro.validation.campaign` ties them together behind
``python -m repro validate``.
"""

from repro.validation.campaign import (CampaignReport, Reproducer,
                                       run_campaign, validation_models)
from repro.validation.generator import (FuzzProfile, build_fuzz_program,
                                        fuzz_corpus)
from repro.validation.invariants import InvariantChecker
from repro.validation.oracle import (Divergence, OracleResult,
                                     differential_check, golden_reference,
                                     run_pipeline)
from repro.validation.shrink import active_length, shrink_program

__all__ = [
    "CampaignReport",
    "Divergence",
    "FuzzProfile",
    "InvariantChecker",
    "OracleResult",
    "Reproducer",
    "active_length",
    "build_fuzz_program",
    "differential_check",
    "fuzz_corpus",
    "golden_reference",
    "run_campaign",
    "run_pipeline",
    "shrink_program",
    "validation_models",
]
