"""Per-cycle pipeline invariant checking.

The checker is wired into :class:`repro.pipeline.processor.Processor` when
``ProcessorParams.check_invariants`` is set (or ``--check-invariants`` on
the CLI).  Each cycle it calls the lightweight ``check()`` hooks on the
ROB, LSQ, and IQ, and layers cross-structure and cross-cycle checks on
top:

* **ROB/IQ membership agreement** — every buffered (un-issued) IQ entry
  must still be in the ROB;
* **monotonic pushdown** — an entry's segment index only decreases over
  time (instructions move *toward* issue), except in the cycle a deadlock
  recovery recycles segment-0 entries to the top;
* **delay monotonicity** — an entry's combined delay value never grows
  (queued heads only promote downward; self-timed chains count down;
  suspension freezes), again modulo deadlock recovery;
* **no issue of non-ready instructions** — anything the IQ hands to the
  execution stage must have every operand ready-time known and elapsed.

Everything here is deliberately O(buffered instructions) per cycle and
runs only under validation, never in benchmark configurations.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.errors import InvariantViolation
from repro.core.iq_base import IQEntry
from repro.core.segmented.links import combined_delay


class InvariantChecker:
    """Cross-structure and cross-cycle pipeline invariants."""

    def __init__(self, processor) -> None:
        self.processor = processor
        self.checks_run = 0
        # seq -> segment index at the previous check (segmented IQ only).
        self._last_segment: Dict[int, int] = {}
        # seq -> combined delay value at the previous check.
        self._last_delay: Dict[int, int] = {}
        self._last_recoveries = 0

    # -------------------------------------------------------- per cycle --
    def check(self, now: int) -> None:
        """Run every invariant against the current pipeline state."""
        processor = self.processor
        self.checks_run += 1
        processor.rob.check(now)
        processor.lsq.check(now)
        iq = processor.iq
        iq.check(now)
        self._check_membership(iq, processor.rob, now)
        self._check_segment_monotonicity(iq, now)

    def _check_membership(self, iq, rob, now: int) -> None:
        """Every buffered IQ entry must still be tracked by the ROB."""
        entries = list(iq.iter_entries())
        if not entries:
            return
        rob_seqs = {inst.seq for inst in rob.members()}
        for entry in entries:
            if entry.seq not in rob_seqs:
                raise InvariantViolation(
                    f"IQ entry #{entry.seq} is not in the ROB at "
                    f"cycle {now} (dropped or double-committed)")

    def _check_segment_monotonicity(self, iq, now: int) -> None:
        """Entries move only toward segment 0 and their delay values only
        shrink — except across a deadlock-recovery cycle, which recycles
        wedged segment-0 entries back to the top on purpose."""
        stat = getattr(iq, "stat_deadlocks", None)
        if stat is None:
            return                      # not a segmented IQ
        recovered = stat.value != self._last_recoveries
        self._last_recoveries = stat.value
        segments: Dict[int, int] = {}
        delays: Dict[int, int] = {}
        for entry in iq.iter_entries():
            segments[entry.seq] = entry.segment
            delay = combined_delay(entry.chain_state.links, now)
            delays[entry.seq] = delay
            if recovered:
                continue          # state still recorded; comparisons skipped
            previous_segment = self._last_segment.get(entry.seq)
            if previous_segment is not None and entry.segment > previous_segment:
                raise InvariantViolation(
                    f"entry #{entry.seq} moved up from segment "
                    f"{previous_segment} to {entry.segment} at cycle {now} "
                    f"without a deadlock recovery")
            previous_delay = self._last_delay.get(entry.seq)
            if previous_delay is not None and delay > previous_delay:
                raise InvariantViolation(
                    f"entry #{entry.seq} delay grew from {previous_delay} "
                    f"to {delay} at cycle {now} without a deadlock recovery")
        self._last_segment = segments
        self._last_delay = delays

    # ----------------------------------------------------------- issue --
    def check_issue(self, entry: IQEntry, now: int) -> None:
        """An issued instruction must have been genuinely ready."""
        if not entry.all_sources_known:
            raise InvariantViolation(
                f"#{entry.seq} issued at cycle {now} with "
                f"{entry.unknown_count} operand ready-times still unknown")
        if entry.ready_cycle > now:
            raise InvariantViolation(
                f"#{entry.seq} issued at cycle {now} but is not ready "
                f"until cycle {entry.ready_cycle}")
