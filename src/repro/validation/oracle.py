"""Differential oracle: timing pipeline vs. in-order architectural model.

The timing model is trace-driven — the functional executor produces the
dynamic instruction stream and the pipeline only *schedules* it — so a
correct pipeline must retire exactly the golden stream, in order, once
each.  Any reorder, drop, or duplication (a broken scoreboard, a lost IQ
entry, a double commit) shows up as the first divergent retirement.  On
top of the stream diff the oracle replays the retired stream through a
fresh :class:`~repro.isa.executor.MachineState` and compares the final
register file and memory image against the golden run, which translates a
stream bug into its architectural consequence ("r5 ended up 3, expected
7") and guards the replay machinery itself.

Comparisons are NaN-safe: fuzzed FP chains routinely overflow to ``inf``
and collapse to ``nan``, and ``nan != nan`` would otherwise report a
false divergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.common.errors import (DeadlockError, InvariantViolation,
                                 SimulationError)
from repro.common.params import ProcessorParams
from repro.isa.executor import MachineState, execute, step_instruction
from repro.isa.instruction import DynInst
from repro.isa.opcodes import NUM_REGS
from repro.isa.program import Program
from repro.pipeline.processor import Processor

#: Cycle budget for one validation pipeline run.  Fuzz programs are a few
#: hundred dynamic instructions; a correct pipeline is orders of magnitude
#: under this.
DEFAULT_MAX_CYCLES = 2_000_000


@dataclass
class Divergence:
    """One observed disagreement between the pipeline and the oracle."""

    #: "stream" | "count" | "register" | "memory" | "invariant" | "error"
    kind: str
    detail: str
    #: Stream index, register number, or memory word — depends on ``kind``.
    position: Optional[int] = None

    def __str__(self) -> str:
        where = "" if self.position is None else f" @ {self.position}"
        return f"[{self.kind}{where}] {self.detail}"


@dataclass
class OracleResult:
    """Outcome of one differential check of one program on one model."""

    model: str
    program: str
    instructions: int = 0
    cycles: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def __str__(self) -> str:
        if self.ok:
            return (f"{self.program}/{self.model}: OK "
                    f"({self.instructions} insts, {self.cycles} cycles)")
        lines = [f"{self.program}/{self.model}: "
                 f"{len(self.divergences)} divergence(s)"]
        lines += [f"  {d}" for d in self.divergences]
        return "\n".join(lines)


def values_equal(a: float, b: float) -> bool:
    """Architectural-value equality with NaN == NaN."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def golden_reference(
        program: Program,
        max_instructions: Optional[int] = None,
) -> Tuple[MachineState, List[DynInst]]:
    """Run the in-order architectural model to completion.

    Returns the final machine state and the full dynamic stream — the
    ground truth the pipeline is diffed against.
    """
    state = MachineState(program)
    code = program.instructions
    limit = max_instructions if max_instructions is not None else float("inf")
    stream: List[DynInst] = []
    while not state.halted and state.instruction_count < limit:
        if not 0 <= state.pc < len(code):
            raise SimulationError(f"pc {state.pc} fell off the program")
        stream.append(step_instruction(state, code[state.pc]))
    return state, stream


#: Builds the processor under test; overridable so test fixtures can
#: inject deliberately-broken pipeline components.
ProcessorFactory = Callable[[Program, ProcessorParams], Processor]


def run_pipeline(
        program: Program,
        params: ProcessorParams,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        max_instructions: Optional[int] = None,
        processor_factory: Optional[ProcessorFactory] = None,
) -> Tuple[List[DynInst], Processor]:
    """Run ``program`` through the timing pipeline, recording retirements."""
    if processor_factory is not None:
        processor = processor_factory(program, params)
    else:
        processor = Processor(
            params, execute(program, max_instructions=max_instructions))
    processor.warm_code(program)
    retired: List[DynInst] = []
    processor.commit_listeners.append(
        lambda inst, cycle: retired.append(inst))
    processor.run(max_cycles=max_cycles)
    if not processor.done:
        raise DeadlockError(
            f"pipeline did not finish within {max_cycles} cycles "
            f"({processor.committed} committed)")
    return retired, processor


def _diff_streams(golden: List[DynInst],
                  retired: List[DynInst]) -> List[Divergence]:
    divergences: List[Divergence] = []
    for index, (want, got) in enumerate(zip(golden, retired)):
        if want.seq != got.seq or want.pc != got.pc:
            divergences.append(Divergence(
                "stream", position=index,
                detail=(f"retirement {index}: expected #{want.seq} "
                        f"pc={want.pc} ({want.static}), got #{got.seq} "
                        f"pc={got.pc} ({got.static})")))
            break
    if len(golden) != len(retired):
        divergences.append(Divergence(
            "count",
            detail=(f"retired {len(retired)} instructions, oracle "
                    f"executed {len(golden)}")))
    return divergences


def _replay_retired(program: Program,
                    retired: List[DynInst]) -> Tuple[Optional[MachineState],
                                                     List[Divergence]]:
    """Re-execute the retired stream in order on fresh state."""
    state = MachineState(program)
    for index, dyn in enumerate(retired):
        if state.halted:
            return None, [Divergence(
                "stream", position=index,
                detail=(f"pipeline retired #{dyn.seq} after the halt "
                        f"was committed"))]
        if state.pc != dyn.pc:
            return None, [Divergence(
                "stream", position=index,
                detail=(f"replay expected pc={state.pc} at retirement "
                        f"{index}, pipeline retired pc={dyn.pc} "
                        f"(#{dyn.seq})"))]
        try:
            step_instruction(state, dyn.static)
        except SimulationError as exc:
            return None, [Divergence(
                "error", position=index,
                detail=f"replay trapped at #{dyn.seq}: {exc}")]
    return state, []


def _diff_state(golden: MachineState,
                replayed: MachineState) -> List[Divergence]:
    divergences: List[Divergence] = []
    for reg in range(NUM_REGS):
        if not values_equal(golden.regs[reg], replayed.regs[reg]):
            divergences.append(Divergence(
                "register", position=reg,
                detail=(f"reg {reg}: pipeline {replayed.regs[reg]!r}, "
                        f"oracle {golden.regs[reg]!r}")))
            if len(divergences) >= 4:
                break
    bad_words = [word for word in range(len(golden.memory))
                 if not values_equal(golden.memory[word],
                                     replayed.memory[word])]
    if bad_words:
        first = bad_words[0]
        divergences.append(Divergence(
            "memory", position=first,
            detail=(f"{len(bad_words)} memory word(s) differ; first at "
                    f"word {first}: pipeline {replayed.memory[first]!r}, "
                    f"oracle {golden.memory[first]!r}")))
    return divergences


def differential_check(
        program: Program,
        params: ProcessorParams,
        *,
        model: str = "",
        max_cycles: int = DEFAULT_MAX_CYCLES,
        max_instructions: Optional[int] = None,
        processor_factory: Optional[ProcessorFactory] = None,
) -> OracleResult:
    """Diff one program's pipeline run against the architectural oracle.

    Never raises for a pipeline bug: deadlocks, invariant violations, and
    stream/state mismatches all come back as :class:`Divergence` records
    so a fuzzing campaign can keep going and shrink the failure.
    """
    result = OracleResult(model=model or params.iq.kind,
                          program=program.name)
    golden_state, golden_stream = golden_reference(program, max_instructions)
    result.instructions = len(golden_stream)
    try:
        retired, processor = run_pipeline(
            program, params, max_cycles=max_cycles,
            max_instructions=max_instructions,
            processor_factory=processor_factory)
    except InvariantViolation as exc:
        result.divergences.append(Divergence("invariant", detail=str(exc)))
        return result
    except SimulationError as exc:
        result.divergences.append(Divergence(
            "error", detail=f"{type(exc).__name__}: {exc}"))
        return result
    result.cycles = processor.cycle

    result.divergences.extend(_diff_streams(golden_stream, retired))
    replayed, replay_divergences = _replay_retired(program, retired)
    result.divergences.extend(
        d for d in replay_divergences
        # The positional diff already reported this stream position.
        if not any(existing.kind == "stream" for existing in
                   result.divergences))
    if replayed is not None:
        result.divergences.extend(_diff_state(golden_state, replayed))
    return result
