"""Fuzzing campaign: N seeded programs x all IQ models, with shrinking.

This is the entry point behind ``python -m repro validate``.  Model
configurations are deliberately *small* (few segments, few chain wires,
shallow FIFOs) — small structures hit their edge cases (full queues,
wire exhaustion, deadlock recovery) after tens of instructions instead
of millions, which is where scheduling bugs live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.params import ProcessorParams
from repro.isa.program import Program
from repro.validation.generator import FuzzProfile, build_fuzz_program
from repro.validation.oracle import (Divergence, OracleResult,
                                     differential_check)
from repro.validation.shrink import active_length, shrink_program


def validation_models() -> Dict[str, ProcessorParams]:
    """Every registered IQ design, sized small enough to stress edge cases.

    Built from the model registry (:mod:`repro.core.registry`), so a
    newly registered design joins the fuzzing campaign automatically via
    its ``validation_config``.
    """
    from repro.core.registry import registered_models
    return {kind: model.validation_config()
            for kind, model in registered_models().items()}


@dataclass
class Reproducer:
    """A shrunk failing program plus how it failed."""

    model: str
    seed: int
    result: OracleResult
    program: Program
    shrunk: Optional[Program] = None

    @property
    def minimal(self) -> Program:
        return self.shrunk if self.shrunk is not None else self.program

    def describe(self) -> str:
        lines = [str(self.result),
                 f"  seed: {self.seed}"]
        if self.shrunk is not None:
            lines.append(
                f"  shrunk to {active_length(self.shrunk)} active "
                f"instructions (from {len(self.program)}):")
        else:
            lines.append(f"  reproducer ({len(self.program)} instructions):")
        # Elide the shrinker's nop/halt filler and labels; what remains
        # is the handful of instructions that still reproduce the failure.
        shown = [line for line in self.minimal.disassemble().splitlines()
                 if not line.endswith(":")
                 and ": nop" not in line and ": halt" not in line]
        if shown:
            lines += [f"    {line}" for line in shown]
        else:
            lines.append("    (only filler remains: the failure is "
                         "positional, not data-dependent)")
        return "\n".join(lines)


@dataclass
class CampaignReport:
    """Aggregate outcome of one fuzzing campaign."""

    seed: int
    programs: int
    models: List[str]
    results: List[OracleResult] = field(default_factory=list)
    reproducers: List[Reproducer] = field(default_factory=list)

    @property
    def checks(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def summary(self) -> str:
        lines = [f"validation campaign: seed={self.seed} "
                 f"programs={self.programs} models={','.join(self.models)}",
                 f"  {self.checks} differential checks, "
                 f"{self.failures} divergent"]
        for reproducer in self.reproducers:
            lines.append(reproducer.describe())
        if self.ok:
            lines.append("  all models agree with the architectural oracle")
        return "\n".join(lines)


def _campaign_cell(payload) -> Tuple[OracleResult, Optional[Reproducer]]:
    """One (program, model) differential check, shrink included.

    Module-level so the parallel executor can ship it to spawned
    workers; the program is rebuilt from its seed inside the worker,
    guaranteeing the cell computes exactly what the serial path would.
    """
    program_seed, profile, name, params, shrink = payload
    program = build_fuzz_program(profile.with_seed(program_seed))
    result = differential_check(program, params, model=name)
    if result.ok:
        return result, None
    reproducer = Reproducer(model=name, seed=program_seed,
                            result=result, program=program)
    if shrink:
        def fails(candidate: Program) -> bool:
            return not differential_check(candidate, params, model=name).ok
        reproducer.shrunk = shrink_program(program, fails, max_attempts=400)
    return result, reproducer


def run_campaign(
        seed: int = 0,
        num_programs: int = 50,
        *,
        profile: Optional[FuzzProfile] = None,
        models: Optional[Dict[str, ProcessorParams]] = None,
        check_invariants: bool = True,
        shrink: bool = True,
        jobs: int = 1,
        progress: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Fuzz ``num_programs`` seeded programs through every model.

    Each failure is recorded as a :class:`Reproducer`; with ``shrink``
    the failing program is also reduced to a minimal variant that still
    fails the same model.  ``jobs`` > 1 fans the (program, model) cells
    out over a process pool; results and reproducers come back in the
    same deterministic order as a serial campaign, and a crashed worker
    is reported as an ``error`` divergence on its cell rather than
    aborting the campaign.
    """
    base = (profile if profile is not None else FuzzProfile()).with_seed(seed)
    if models is None:
        models = validation_models()
    if check_invariants:
        models = {name: params.replace(check_invariants=True)
                  for name, params in models.items()}
    report = CampaignReport(seed=seed, programs=num_programs,
                            models=list(models))
    payloads = []
    labels = []
    for index in range(num_programs):
        program_seed = seed + index
        for name, params in models.items():
            payloads.append((program_seed, base, name, params, shrink))
            labels.append(f"[{index + 1}/{num_programs}] "
                          f"seed={program_seed}/{name}")
    from repro.fabric import CellError, ExecutionConfig, Executor
    executor = Executor(ExecutionConfig(jobs=jobs))
    cells = executor.map(_campaign_cell, payloads, labels=labels)
    for payload, label, cell in zip(payloads, labels, cells):
        program_seed, _, name, _, _ = payload
        if isinstance(cell, CellError):
            result: OracleResult = OracleResult(
                model=name, program=f"fuzz-{program_seed}",
                divergences=[Divergence(
                    "error", detail=f"campaign worker failed: {cell.error}")])
            reproducer = None
        else:
            result, reproducer = cell
        report.results.append(result)
        if progress is not None:
            progress(f"{label.split(' ', 1)[0]} {result}")
        if reproducer is not None:
            report.reproducers.append(reproducer)
    return report
