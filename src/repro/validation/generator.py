"""Seeded random program generation for differential validation.

Programs are built so that they *always terminate* and never trap: every
in-body branch jumps strictly forward, the only backward branch is the
counted outer loop, memory operands are masked into an allocated segment
before use, and the opcode pool excludes ops with data-dependent traps
(divide, sqrt, fp-to-int of a possibly-infinite value).  Integer and
floating-point data live in disjoint memory regions so an integer op can
never consume an FP-produced infinity (``int(inf)`` would trap) and an FP
op can never consume an arbitrarily large chained integer
(``float(2**4000)`` would trap).  Within those guardrails the generator
produces tunable mixes of ALU/FP/load/store/branch work:

* ``chain_bias`` steers sources toward the most recently written register,
  producing long serial dependence chains (deep chains are what exercise
  the segmented IQ's delay algebra);
* ``miss_bias`` steers memory operands toward a cold region larger than
  the L1 data cache, producing load misses (misses are what exercise
  chain suspension and the hit/miss predictor).

Every program is a pure function of its :class:`FuzzProfile`, so a seed
integer fully identifies a reproducer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List

from repro.common.errors import ConfigurationError
from repro.isa import F, ProgramBuilder, R
from repro.isa.program import Program

#: Integer registers the fuzzer computes in (r13-r15 are reserved for
#: address scratch, the loop counter, and the loop limit).
INT_POOL = [R(i) for i in range(1, 13)]
FP_POOL = [F(i) for i in range(8)]
ADDR_REG = R(13)
LOOP_COUNTER = R(14)
LOOP_LIMIT = R(15)


@dataclass(frozen=True)
class FuzzProfile:
    """Knobs for one random program (deterministic given ``seed``)."""

    seed: int = 0
    #: Number of random units in the loop body (a unit is 1-3 instructions).
    length: int = 40
    #: Iterations of the counted outer loop wrapping the body.
    loop_iterations: int = 3
    #: Probability a source operand is the most recently written register.
    chain_bias: float = 0.5
    #: Unit-type mix (remaining probability mass is integer ALU work).
    load_frac: float = 0.20
    store_frac: float = 0.10
    branch_frac: float = 0.10
    fp_frac: float = 0.20
    #: Fraction of memory units aimed at the cold (L1-missing) region.
    miss_bias: float = 0.25
    #: Hot regions: small, stay cache-resident.  Cold regions: larger than
    #: the 64 KB L1 so scattered walks miss.  Must be powers of two (the
    #: address-mask trick depends on it).
    hot_words: int = 256
    cold_words: int = 1 << 14

    def validate(self) -> None:
        if self.length < 1:
            raise ConfigurationError("length must be >= 1")
        if self.loop_iterations < 1:
            raise ConfigurationError("loop_iterations must be >= 1")
        for name in ("chain_bias", "load_frac", "store_frac",
                     "branch_frac", "fp_frac", "miss_bias"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if (self.load_frac + self.store_frac + self.branch_frac
                + self.fp_frac) > 1.0:
            raise ConfigurationError("unit-type fractions sum past 1.0")
        for name in ("hot_words", "cold_words"):
            value = getattr(self, name)
            if value < 64 or value & (value - 1):
                raise ConfigurationError(
                    f"{name} must be a power of two >= 64")

    def with_seed(self, seed: int) -> "FuzzProfile":
        return replace(self, seed=seed)


def build_fuzz_program(profile: FuzzProfile) -> Program:
    """Generate the deterministic random program described by ``profile``."""
    profile.validate()
    rng = random.Random(profile.seed)
    b = ProgramBuilder(f"fuzz-{profile.seed}")
    # Disjoint int/fp data (see module docstring for why).
    int_hot = b.alloc("int_hot", profile.hot_words,
                      init=[float(rng.randrange(1, 512))
                            for _ in range(profile.hot_words)])
    int_cold = b.alloc("int_cold", profile.cold_words)
    fp_hot = b.alloc("fp_hot", profile.hot_words,
                     init=[rng.randrange(1, 512) * 0.5
                           for _ in range(profile.hot_words)])
    fp_cold = b.alloc("fp_cold", profile.cold_words)

    last_int = INT_POOL[0]
    last_fp = FP_POOL[0]

    def int_src() -> int:
        if rng.random() < profile.chain_bias:
            return last_int
        return rng.choice(INT_POOL)

    def fp_src() -> int:
        if rng.random() < profile.chain_bias:
            return last_fp
        return rng.choice(FP_POOL)

    # Preamble: seed every pool register with a small random value.
    for reg in INT_POOL:
        b.li(reg, rng.randrange(1, 1024))
    for index, reg in enumerate(FP_POOL):
        b.cvtif(reg, INT_POOL[index % len(INT_POOL)])
    b.li(LOOP_COUNTER, 0)
    b.li(LOOP_LIMIT, profile.loop_iterations)
    b.label("loop")

    def emit_addr(cold_region: bool) -> None:
        """Mask a pool register into a word index, scale to a byte offset."""
        words = profile.cold_words if cold_region else profile.hot_words
        b.andi(ADDR_REG, int_src(), words - 1)
        b.slli(ADDR_REG, ADDR_REG, 3)

    int_alu = ("add", "sub", "and_", "or_", "xor", "slt", "mul",
               "addi", "andi", "ori", "slti", "slli", "srli")
    fp_alu = ("fadd", "fsub", "fmul", "fneg", "fcmplt", "cvtif")
    branches = ("beq", "bne", "blt", "bge")

    for unit in range(profile.length):
        b.label(f"U{unit}")
        roll = rng.random()
        use_fp = rng.random() < profile.fp_frac
        cold_region = rng.random() < profile.miss_bias
        if roll < profile.load_frac:
            emit_addr(cold_region)
            if use_fp:
                dest = rng.choice(FP_POOL)
                b.fld(dest, ADDR_REG,
                      base=fp_cold if cold_region else fp_hot)
                last_fp = dest
            else:
                dest = rng.choice(INT_POOL)
                b.ld(dest, ADDR_REG,
                     base=int_cold if cold_region else int_hot)
                last_int = dest
        elif roll < profile.load_frac + profile.store_frac:
            emit_addr(cold_region)
            if use_fp:
                b.fst(fp_src(), ADDR_REG,
                      base=fp_cold if cold_region else fp_hot)
            else:
                b.st(int_src(), ADDR_REG,
                     base=int_cold if cold_region else int_hot)
        elif roll < (profile.load_frac + profile.store_frac
                     + profile.branch_frac):
            # Forward-only: a data-dependent skip over part of the body.
            target = rng.randrange(unit + 1, profile.length + 1)
            label = "tail" if target == profile.length else f"U{target}"
            getattr(b, rng.choice(branches))(int_src(), int_src(), label)
        elif roll < (profile.load_frac + profile.store_frac
                     + profile.branch_frac + profile.fp_frac):
            op = rng.choice(fp_alu)
            if op == "cvtif":
                # Mask first: a chained integer can exceed float range.
                masked = rng.choice(INT_POOL)
                b.andi(masked, int_src(), 0xFFFF)
                last_int = masked
                dest = rng.choice(FP_POOL)
                b.cvtif(dest, masked)
                last_fp = dest
            elif op == "fneg":
                dest = rng.choice(FP_POOL)
                b.fneg(dest, fp_src())
                last_fp = dest
            elif op == "fcmplt":
                dest = rng.choice(INT_POOL)
                b.fcmplt(dest, fp_src(), fp_src())
                last_int = dest
            else:
                dest = rng.choice(FP_POOL)
                getattr(b, op)(dest, fp_src(), fp_src())
                last_fp = dest
        else:
            op = rng.choice(int_alu)
            dest = rng.choice(INT_POOL)
            if op in ("slli", "srli"):
                getattr(b, op)(dest, int_src(), rng.randrange(0, 4))
            elif op.endswith("i"):
                getattr(b, op)(dest, int_src(), rng.randrange(-64, 64))
            else:
                getattr(b, op)(dest, int_src(), int_src())
            if op in ("mul", "sll", "slli"):
                # Bound chained products/shifts so loop iterations cannot
                # grow values without limit (python ints never overflow,
                # but huge values slow runs to a crawl).
                b.andi(dest, dest, 0xFFFF)
            last_int = dest

    b.label("tail")
    b.addi(LOOP_COUNTER, LOOP_COUNTER, 1)
    b.blt(LOOP_COUNTER, LOOP_LIMIT, "loop")
    b.halt()
    return b.build()


def fuzz_corpus(base: FuzzProfile, count: int) -> List[Program]:
    """``count`` programs seeded ``base.seed``, ``base.seed + 1``, ..."""
    return [build_fuzz_program(base.with_seed(base.seed + i))
            for i in range(count)]
