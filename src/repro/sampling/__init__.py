"""Sampled simulation: checkpoints, functional fast-forward, interval
sampling with confidence intervals.  See docs/sampling.md."""

from repro.sampling.checkpoint import (Checkpoint, CheckpointStore,
                                       checkpoint_key)
from repro.sampling.sampler import (FunctionalProfile, SampleReport,
                                    SamplingConfig, WindowResult,
                                    WindowSpec, build_checkpoints,
                                    compare_with_full, plan_windows,
                                    run_window, sample_workload,
                                    stitch_windows)
from repro.sampling.warming import BranchWarmer, TagArray, WarmingHierarchy

__all__ = [
    "BranchWarmer", "Checkpoint", "CheckpointStore", "FunctionalProfile",
    "SampleReport", "SamplingConfig", "TagArray", "WarmingHierarchy",
    "WindowResult", "WindowSpec", "build_checkpoints", "checkpoint_key",
    "compare_with_full", "plan_windows", "run_window", "sample_workload",
    "stitch_windows",
]
