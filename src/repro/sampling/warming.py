"""Functional warming models for the sampling subsystem.

Between detailed measurement windows the program advances at functional
speed, but long-lived microarchitectural state — cache tags and branch
predictor tables — must keep learning, or every window would start cold
and under-report IPC (the classic sampling pitfall SMARTS names "cold
state").  This module warms that state *functionally*: no timing, no
MSHRs, no bandwidth, just the reference-stream updates.

Two fidelity notes:

* **Caches** are warmed by a tag/LRU-only model (:class:`TagArray`) whose
  geometry, replacement, and dirty handling mirror
  :class:`repro.memory.cache.Cache` exactly; its :meth:`TagArray.state`
  output loads directly into a detailed cache via ``load_tag_state``.
  Timing-dependent contents (lines brought in by overlapping misses in a
  different order) can differ slightly from a detailed run — that residual
  is part of the sampling error the confidence interval reports.
* **Branch predictors** are warmed with the *real*
  :class:`~repro.frontend.branch_predictor.HybridBranchPredictor` and
  :class:`~repro.frontend.btb.BranchTargetBuffer` classes, replaying the
  exact update sequence ``FrontEnd._predict`` performs (the front end is
  trace-driven off the correct path, so its predictor state is a pure
  function of the instruction stream — functional warming is *exact* for
  it).
"""

from __future__ import annotations

from typing import List

from repro.common.params import MemoryParams, ProcessorParams
from repro.common.stats import StatGroup
from repro.frontend.branch_predictor import HybridBranchPredictor
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import INST_BYTES
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


class TagArray:
    """Tag/LRU/dirty-only cache model for functional warming.

    Mirrors the residency behaviour of :class:`repro.memory.cache.Cache`:
    same set indexing, MRU-first LRU order, allocate-on-miss with the miss
    access's write-ness as the initial dirty bit, LRU eviction.
    """

    def __init__(self, params) -> None:
        self.params = params
        self._num_sets = params.num_sets
        self._assoc = params.assoc
        self._line_shift = params.line_bytes.bit_length() - 1
        # Per set: [line_addr, dirty] entries, most-recently-used first.
        self._sets: List[List[List]] = [[] for _ in range(self._num_sets)]

    def line_addr(self, addr: int) -> int:
        return addr >> self._line_shift

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Touch ``addr``; returns True on a hit, allocating on a miss."""
        line = self.line_addr(addr)
        cache_set = self._sets[line % self._num_sets]
        for position, entry in enumerate(cache_set):
            if entry[0] == line:
                if position:
                    cache_set.pop(position)
                    cache_set.insert(0, entry)
                if is_write:
                    entry[1] = True
                return True
        if len(cache_set) >= self._assoc:
            cache_set.pop()
        cache_set.insert(0, [line, is_write])
        return False

    def warm_line(self, addr: int, dirty: bool = False) -> None:
        """Pre-install a line without counting it as a reference
        (mirrors :meth:`repro.memory.cache.Cache.warm_line`)."""
        line = self.line_addr(addr)
        cache_set = self._sets[line % self._num_sets]
        if any(entry[0] == line for entry in cache_set):
            return
        if len(cache_set) >= self._assoc:
            cache_set.pop()
        cache_set.insert(0, [line, dirty])

    def state(self) -> List[List[List]]:
        """Plain-data tag state, loadable via ``Cache.load_tag_state``."""
        return [[list(entry) for entry in cache_set]
                for cache_set in self._sets]


class WarmingHierarchy:
    """Functional L1I/L1D/L2 tag hierarchy driven by the dynamic stream.

    Cumulative miss counters (``l1i_misses``/``l1d_misses``/``l2_misses``)
    double as sampling *features*: the warming pass sees every instruction,
    so per-region functional miss counts are free covariates for the
    regression estimator in :mod:`repro.sampling.sampler`.
    """

    def __init__(self, params: MemoryParams) -> None:
        self.l1i = TagArray(params.l1i)
        self.l1d = TagArray(params.l1d)
        self.l2 = TagArray(params.l2)
        self.l1i_misses = 0
        self.l1d_misses = 0
        self.l2_misses = 0

    def warm_code(self, program) -> None:
        """Mirror :meth:`repro.pipeline.processor.Processor.warm_code`."""
        line = self.l1i.params.line_bytes
        for byte_addr in range(0, len(program) * INST_BYTES, line):
            self.l1i.warm_line(byte_addr)
            self.l2.warm_line(byte_addr)

    def warm_data(self, program) -> None:
        """Mirror :meth:`repro.pipeline.processor.Processor.warm_data`."""
        line = self.l2.params.line_bytes
        for segment in program.segments.values():
            for byte_addr in range(segment.base, segment.base + segment.bytes,
                                   line):
                self.l2.warm_line(byte_addr)

    def inst_fetch(self, pc: int) -> None:
        if not self.l1i.access(pc * INST_BYTES):
            self.l1i_misses += 1
            if not self.l2.access(pc * INST_BYTES):
                self.l2_misses += 1

    def data_access(self, addr: int, is_write: bool) -> None:
        # Writebacks of dirty victims do not allocate in the L2 (matching
        # the detailed model), so only the demand miss goes down a level.
        if not self.l1d.access(addr, is_write):
            self.l1d_misses += 1
            if not self.l2.access(addr, is_write):
                self.l2_misses += 1

    def state(self) -> dict:
        return {"l1i": self.l1i.state(), "l1d": self.l1d.state(),
                "l2": self.l2.state()}


class BranchWarmer:
    """Replays ``FrontEnd._predict``'s exact predictor/BTB update sequence.

    The BTB's LRU order depends on *lookup* order too, so lookups are
    reproduced even though their results are discarded.
    """

    def __init__(self, params: ProcessorParams) -> None:
        self._scratch = StatGroup("warming")
        self.bpred = HybridBranchPredictor(params.branch, self._scratch)
        self.btb = BranchTargetBuffer(params.branch, self._scratch)
        self.branches = 0
        self.mispredicts = 0

    def observe(self, dyn: DynInst) -> None:
        static = dyn.static
        if static.info.op_class is OpClass.JUMP:
            self.btb.lookup(dyn.pc)
            self.btb.insert(dyn.pc)
            return
        if not static.is_branch:
            return
        self.branches += 1
        correct = self.bpred.update(dyn.pc, dyn.taken)
        if not correct:
            self.mispredicts += 1
        if dyn.taken:
            if correct:
                self.btb.lookup(dyn.pc)
            self.btb.insert(dyn.pc)

    def state(self) -> dict:
        return {"bpred": self.bpred.state_dict(),
                "btb": self.btb.state_dict()}
