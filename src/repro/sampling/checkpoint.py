"""Architectural checkpoints: compact, content-addressed, on-disk.

A :class:`Checkpoint` captures everything a detailed measurement window
needs to start from realistic state:

* the **architectural** state (registers, memory, pc, dynamic-instruction
  index) via :meth:`repro.isa.executor.MachineState.snapshot`, and
* the **warm microarchitectural** state produced by functional warming —
  branch predictor + BTB tables and per-level cache tags — in exactly the
  plain-data shapes ``FrontEnd.load_warm_state`` and
  ``MemoryHierarchy.load_tag_state`` accept.

Checkpoints serialize to canonical JSON (sorted keys, no whitespace), so
the same execution point always produces byte-identical artifacts — the
property the save→restore→resume tests pin down.  The on-disk
:class:`CheckpointStore` follows :mod:`repro.harness.cache`'s
content-hash scheme: entries are keyed by a SHA-256 over the workload
identity, the warm-state-relevant parameters, the window plan, and the
simulator source-version token, so any code change invalidates every
stored checkpoint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.common.params import ProcessorParams
from repro.harness.cache import default_cache_dir, source_version_token

#: Bump when the checkpoint layout changes; part of every key.
CHECKPOINT_SCHEMA = 2


@dataclass
class Checkpoint:
    """One resumable execution point (plain data, pickle/JSON-safe)."""

    #: Dynamic-instruction index the checkpoint was taken at (the next
    #: instruction to execute has this sequence number).
    instruction_index: int
    #: ``MachineState.snapshot()`` payload.
    arch: Dict[str, object]
    #: Warm microarchitectural state: ``{"frontend": {...}, "caches": {...}}``.
    warm: Dict[str, dict]

    def to_dict(self) -> dict:
        return {"instruction_index": self.instruction_index,
                "arch": self.arch, "warm": self.warm}

    @classmethod
    def from_dict(cls, raw: dict) -> "Checkpoint":
        return cls(instruction_index=raw["instruction_index"],
                   arch=raw["arch"], warm=raw["warm"])

    def to_json(self) -> str:
        """Canonical (byte-stable) JSON encoding."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        return cls.from_dict(json.loads(text))


def checkpoint_key(workload: str, params: ProcessorParams, *,
                   scale: int = 1,
                   max_instructions: Optional[int] = None,
                   window_plan: Optional[List[int]] = None,
                   warm_code: bool = True,
                   token: Optional[str] = None) -> str:
    """Content-hash key for one workload's checkpoint set.

    The full parameter tree is hashed (not just the warm-state-relevant
    subset): hashing more than necessary can only cause spurious misses,
    never a stale hit.
    """
    payload = json.dumps({
        "schema": CHECKPOINT_SCHEMA,
        "token": token if token is not None else source_version_token(),
        "workload": workload,
        "scale": scale,
        "max_instructions": max_instructions,
        "window_plan": window_plan,
        "warm_code": warm_code,
        "params": dataclasses.asdict(params),
    }, sort_keys=True, default=str, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class CheckpointStore:
    """Persistent checkpoint-set store under the repro cache directory.

    One entry holds the whole checkpoint list for a (workload, params,
    window-plan) triple — checkpoints for one sampled run are always
    created and consumed together.  Corrupt entries are discarded and
    recomputed; the store never makes a run fail.
    """

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 enabled: bool = True,
                 token: Optional[str] = None) -> None:
        self.directory = (Path(directory) if directory is not None
                          else default_cache_dir() / "checkpoints")
        self.enabled = enabled
        self.token = token
        self.hits = 0
        self.misses = 0

    def key_for(self, workload: str, params: ProcessorParams,
                **kwargs) -> str:
        return checkpoint_key(workload, params, token=self.token, **kwargs)

    def _path(self, key: str) -> Path:
        return self.directory / f"ckpt-{key}.json"

    def get(self, key: str):
        """``(checkpoints, profile_dict_or_None)``, or None on miss.

        Corrupt or old-schema entries are discarded and count as misses.
        """
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            raw = json.loads(path.read_text())
            if raw["schema"] != CHECKPOINT_SCHEMA:
                raise ValueError(f"schema {raw['schema']}")
            checkpoints = [Checkpoint.from_dict(entry)
                           for entry in raw["checkpoints"]]
            profile = raw.get("profile")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return checkpoints, profile

    def put(self, key: str, checkpoints: List[Checkpoint],
            profile: Optional[dict] = None) -> None:
        """Store a checkpoint list (atomic write, like ResultCache).

        ``profile`` is the sampled run's functional profile
        (:meth:`repro.sampling.sampler.FunctionalProfile.to_dict`) — it
        is produced by the same pass, so it is cached alongside.
        """
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CHECKPOINT_SCHEMA,
                   "checkpoints": [c.to_dict() for c in checkpoints],
                   "profile": profile}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True,
                          separators=(",", ":"))
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"CheckpointStore({self.directory}, {state}, "
                f"hits={self.hits}, misses={self.misses})")
