"""SMARTS-style systematic interval sampling over the detailed simulator.

A sampled run replaces one long cycle-accurate simulation with N short
detailed *windows* spread periodically over the dynamic instruction
stream:

1. one functional pass counts the stream and drops an architectural
   checkpoint (plus functionally-warmed caches / branch predictor — see
   :mod:`repro.sampling.warming`) at the start of each window;
2. each window restores its checkpoint, runs ``warmup`` instructions of
   detailed simulation to fill the pipeline, then measures ``measure``
   instructions with window-scoped statistics;
3. the per-window measurements are stitched into a whole-run IPC
   estimate with a standard error and confidence interval, per the
   SMARTS methodology (Wunderlich et al.): systematic sampling of a long
   quasi-periodic stream behaves like random sampling, so the CLT
   applies.  On top of the plain ratio estimate, the warming pass's
   functional event counts (mispredicts, cache misses) act as control
   variates: a regression of window cycles on those counts predicts the
   whole run's cycles from the stream totals, removing most of the
   window-to-window CPI variance (see :func:`stitch_windows`).

Windows are independent :class:`WindowSpec` cells and fan out over the
execution fabric's :class:`~repro.fabric.Executor` — one long workload
parallelizes *within* itself, which full-detail runs never could.
"""

from __future__ import annotations

import math
import random
import statistics
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.common.errors import ConfigurationError
from repro.common.params import ProcessorParams
from repro.common.stats import StatGroup
from repro.fabric import ExecutionConfig, Executor, raise_on_errors
from repro.harness.runner import RunResult, resolve_workload
from repro.isa.executor import MachineState, execute_from, run_functional
from repro.pipeline.processor import Processor
from repro.sampling.checkpoint import Checkpoint, CheckpointStore
from repro.sampling.warming import BranchWarmer, WarmingHierarchy
from repro.workloads.kernels import WorkloadSpec

#: Two-sided normal critical values for the supported confidence levels.
_Z_VALUES = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs for one sampled run (see docs/sampling.md for guidance)."""

    #: Number of periodic measurement windows.
    num_windows: int = 10
    #: Detailed instructions simulated before measurement starts in each
    #: window (fills the pipeline; caches/predictors are already warm).
    warmup_instructions: int = 200
    #: Instructions measured per window.
    measure_instructions: int = 500
    #: Per-window cycle budget (safety net, not normally reached).
    max_window_cycles: int = 2_000_000
    #: Confidence level for the reported interval.
    confidence: float = 0.95
    #: Seed for the per-window placement jitter (see :func:`plan_windows`).
    seed: int = 0

    def validate(self) -> None:
        if self.num_windows < 1:
            raise ConfigurationError("num_windows must be >= 1")
        if self.warmup_instructions < 0:
            raise ConfigurationError("warmup_instructions must be >= 0")
        if self.measure_instructions < 1:
            raise ConfigurationError("measure_instructions must be >= 1")
        if self.confidence not in _Z_VALUES:
            raise ConfigurationError(
                f"confidence must be one of {sorted(_Z_VALUES)}")

    @property
    def window_span(self) -> int:
        return self.warmup_instructions + self.measure_instructions


def plan_windows(total_instructions: int, config: SamplingConfig) -> List[int]:
    """Window-start instruction indices: systematic random sampling.

    One window per stride, placed at a deterministic pseudo-random offset
    *within* its stride.  Plain periodic placement aliases badly against
    loopy programs — if the stride is near a multiple of a kernel's outer
    loop period, every window lands in the same phase and the estimate is
    biased with a confidence interval that never covers the truth.  The
    jitter (seeded, so plans are reproducible and cacheable) breaks that
    correlation while keeping one window per region of the stream.

    Raises :class:`ConfigurationError` when the stream is too short for
    the requested plan — sampling a stream you could simulate in full is
    a configuration mistake, not something to paper over.
    """
    config.validate()
    if total_instructions < 1:
        raise ConfigurationError("empty dynamic stream")
    stride = total_instructions // config.num_windows
    span = config.window_span
    if stride < span:
        raise ConfigurationError(
            f"stream of {total_instructions} instructions cannot fit "
            f"{config.num_windows} non-overlapping windows of "
            f"{span} instructions (stride {stride}); "
            f"reduce --windows/--warmup/--measure or run full detail")
    rng = random.Random(config.seed)
    return [index * stride + rng.randrange(stride - span + 1)
            for index in range(config.num_windows)]


# ---------------------------------------------------------- checkpointing --
#: Feature names recorded by the functional profile, in column order.
FEATURE_NAMES = ("instructions", "mispredicts", "l1d_misses", "l2_misses",
                 "l1i_misses")


@dataclass
class FunctionalProfile:
    """Per-window and whole-run functional event counts.

    Collected for free during the warming pass (which walks every dynamic
    instruction anyway).  ``windows[i]`` counts events inside window
    *i*'s measured range; ``totals`` counts them over the entire stream.
    These are the covariates for the regression estimator in
    :func:`stitch_windows`.
    """

    windows: List[Dict[str, int]] = field(default_factory=list)
    totals: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"windows": self.windows, "totals": self.totals}

    @classmethod
    def from_dict(cls, raw: dict) -> "FunctionalProfile":
        return cls(windows=list(raw["windows"]), totals=dict(raw["totals"]))


class _FeatureCounter:
    """Tracks cumulative functional events; yields deltas over ranges."""

    def __init__(self, warming: WarmingHierarchy,
                 branches: BranchWarmer) -> None:
        self._warming = warming
        self._branches = branches
        self._mark: Dict[str, int] = {}

    def _cumulative(self, instructions: int) -> Dict[str, int]:
        return {"instructions": instructions,
                "mispredicts": self._branches.mispredicts,
                "l1d_misses": self._warming.l1d_misses,
                "l2_misses": self._warming.l2_misses,
                "l1i_misses": self._warming.l1i_misses}

    def mark(self, instructions: int) -> None:
        self._mark = self._cumulative(instructions)

    def delta(self, instructions: int) -> Dict[str, int]:
        now = self._cumulative(instructions)
        return {name: now[name] - self._mark.get(name, 0)
                for name in FEATURE_NAMES}


def build_checkpoints(program, params: ProcessorParams,
                      starts: Sequence[int], *,
                      total_instructions: Optional[int] = None,
                      feature_ranges: Optional[Sequence[tuple]] = None,
                      warm_code: bool = True,
                      warm_data: bool = False):
    """One functional pass: warm caches/predictors, checkpoint at ``starts``.

    Each checkpoint captures the architectural state *before* the
    instruction at its start index executes, plus warm state reflecting
    every instruction before it.  ``warm_code``/``warm_data`` mirror the
    detailed runner's pre-warming so window state matches what a full
    detailed run would have seen.

    ``feature_ranges`` is an optional sorted list of non-overlapping
    ``(begin, end)`` instruction ranges (the measured parts of the
    windows); when given, the pass also records functional event counts
    per range and over the whole stream, and the walk continues to the
    end of the stream even after the last checkpoint.

    Returns ``(checkpoints, profile)``; ``profile`` is None when no
    ``feature_ranges`` were requested.
    """
    warming = WarmingHierarchy(params.memory)
    if warm_code:
        warming.warm_code(program)
    if warm_data:
        warming.warm_data(program)
    branches = BranchWarmer(params)
    state = MachineState(program)
    targets = deque(sorted(set(starts)))
    checkpoints: List[Checkpoint] = []
    counter = _FeatureCounter(warming, branches)
    ranges = deque(sorted(feature_ranges)) if feature_ranges else deque()
    profile = FunctionalProfile() if feature_ranges else None
    in_range = False

    def snapshot_due() -> None:
        while targets and state.instruction_count == targets[0]:
            targets.popleft()
            checkpoints.append(Checkpoint(
                instruction_index=state.instruction_count,
                arch=state.snapshot(),
                warm={"frontend": branches.state(),
                      "caches": warming.state()}))

    def ranges_due() -> None:
        nonlocal in_range
        index = state.instruction_count
        if in_range and index >= ranges[0][1]:
            profile.windows.append(counter.delta(index))
            ranges.popleft()
            in_range = False
        if not in_range and ranges and index >= ranges[0][0]:
            counter.mark(index)
            in_range = True

    snapshot_due()
    if ranges:
        ranges_due()
    for dyn in execute_from(state, max_instructions=total_instructions):
        warming.inst_fetch(dyn.pc)
        static = dyn.static
        if static.is_mem:
            warming.data_access(dyn.mem_addr, static.is_store)
        branches.observe(dyn)
        if targets:
            snapshot_due()
        if ranges:
            ranges_due()
        elif not targets and profile is None:
            break
    if targets:
        raise ConfigurationError(
            f"stream ended at instruction {state.instruction_count} before "
            f"checkpoint target(s) {list(targets)}")
    if profile is not None:
        if in_range:                      # stream ended inside a range
            profile.windows.append(counter.delta(state.instruction_count))
            ranges.popleft()
        counter._mark = {}
        profile.totals = counter.delta(state.instruction_count)
    return checkpoints, profile


# ------------------------------------------------------------- one window --
@dataclass(frozen=True)
class WindowSpec:
    """One detailed measurement window: picklable worker payload."""

    workload: str
    params: ProcessorParams
    checkpoint: dict                  # Checkpoint.to_dict()
    warmup: int
    measure: int
    index: int
    scale: int = 1
    #: Absolute cap on the dynamic stream (the sampled run's instruction
    #: budget), so the last window cannot run past the full run's end.
    stream_limit: Optional[int] = None
    max_cycles: int = 2_000_000


@dataclass
class WindowResult:
    """What one detailed window measured."""

    index: int
    start_instruction: int
    warmup_committed: int
    warmup_cycles: int
    measured_instructions: int
    measured_cycles: int
    #: Window-scoped stats snapshot (see StatGroup.snapshot).
    stats: Dict[str, Dict] = field(default_factory=dict, repr=False)

    @property
    def cpi(self) -> float:
        return (self.measured_cycles / self.measured_instructions
                if self.measured_instructions else 0.0)

    @property
    def ipc(self) -> float:
        return (self.measured_instructions / self.measured_cycles
                if self.measured_cycles else 0.0)

    @property
    def detailed_cycles(self) -> int:
        return self.warmup_cycles + self.measured_cycles

    @property
    def detailed_instructions(self) -> int:
        return self.warmup_committed + self.measured_instructions


def run_window(spec: WindowSpec) -> WindowResult:
    """Restore the checkpoint, simulate warmup + measurement in detail."""
    workload = resolve_workload(spec.workload)
    program = workload.build(spec.scale)
    checkpoint = Checkpoint.from_dict(spec.checkpoint)
    state = MachineState.restore(program, checkpoint.arch)
    start = checkpoint.instruction_index
    window_end = start + spec.warmup + spec.measure
    if spec.stream_limit is not None:
        window_end = min(window_end, spec.stream_limit)
    stream = execute_from(state, max_instructions=window_end)

    processor = Processor(spec.params, stream)
    processor.load_warm_state(checkpoint.warm)

    # Warmup: fill the pipeline in detail, then scope the stats to the
    # measurement phase.  Committed counts below are window-relative.
    warmup_target = min(spec.warmup, max(0, window_end - start))
    processor.run(max_cycles=spec.max_cycles, max_committed=warmup_target)
    warmup_committed = processor.committed
    warmup_cycles = processor.cycle
    processor.stats.reset()

    processor.run(max_cycles=spec.max_cycles,
                  max_committed=warmup_committed + spec.measure)
    measured = processor.committed - warmup_committed
    measured_cycles = processor.cycle - warmup_cycles
    snap = processor.stats.snapshot()
    # run() writes the cumulative commit count into the counter; re-scope
    # it (and cycles, which reset() already scoped) to the window.
    snap["counters"]["committed"] = measured
    return WindowResult(
        index=spec.index,
        start_instruction=start,
        warmup_committed=warmup_committed,
        warmup_cycles=warmup_cycles,
        measured_instructions=measured,
        measured_cycles=measured_cycles,
        stats=snap)


# --------------------------------------------------------------- stitching --
#: Features used as regressors (subset of FEATURE_NAMES): per-window
#: instruction count (the per-instruction base cost), branch mispredicts,
#: and L1D/L2 miss counts — the events that dominate CPI variation.
_REGRESSORS = ("instructions", "mispredicts", "l1d_misses", "l2_misses")
#: Ridge regularization strength (applied after column scaling).
_RIDGE_LAMBDA = 1e-3
#: The regression estimate is clamped to within this relative distance of
#: the plain ratio estimate — insurance against a degenerate fit.
_REGRESSION_GUARD = 0.25


def _solve_linear(matrix: List[List[float]],
                  rhs: List[float]) -> Optional[List[float]]:
    """Gaussian elimination with partial pivoting; None when singular."""
    size = len(rhs)
    rows = [row[:] + [value] for row, value in zip(matrix, rhs)]
    for col in range(size):
        pivot = max(range(col, size), key=lambda r: abs(rows[r][col]))
        if abs(rows[pivot][col]) < 1e-12:
            return None
        rows[col], rows[pivot] = rows[pivot], rows[col]
        for row in range(col + 1, size):
            factor = rows[row][col] / rows[col][col]
            for k in range(col, size + 1):
                rows[row][k] -= factor * rows[col][k]
    solution = [0.0] * size
    for col in range(size - 1, -1, -1):
        residual = rows[col][size] - sum(
            rows[col][k] * solution[k] for k in range(col + 1, size))
        solution[col] = residual / rows[col][col]
    return solution


def _fit_cycles(features: List[Dict[str, int]],
                cycles: List[int],
                totals: Dict[str, int]):
    """Ridge-regularized fit of window cycles on functional features.

    Returns ``(predicted_total_cycles, residual_std)`` or None when the
    system is under-determined.  The model is linear through the origin
    (the per-window instruction count serves as the intercept): window
    cycles ~ beta . (instructions, mispredicts, l1d_misses, l2_misses).
    Fitting on *functional* counts and predicting from *functional*
    totals makes any functional-vs-detailed bias cancel to first order.
    """
    n, k = len(cycles), len(_REGRESSORS)
    if n < k + 2:
        return None
    design = [[float(row[name]) for name in _REGRESSORS]
              for row in features]
    scale = [max(1e-9, sum(row[j] for row in design) / n)
             for j in range(k)]
    scaled = [[row[j] / scale[j] for j in range(k)] for row in design]
    gram = [[sum(a[i] * a[j] for a in scaled)
             + (_RIDGE_LAMBDA * n if i == j else 0.0)
             for j in range(k)] for i in range(k)]
    moment = [sum(a[i] * y for a, y in zip(scaled, cycles))
              for i in range(k)]
    beta = _solve_linear(gram, moment)
    if beta is None:
        return None
    predicted_total = sum(beta[j] * totals[_REGRESSORS[j]] / scale[j]
                          for j in range(k))
    residuals = [y - sum(beta[j] * a[j] for j in range(k))
                 for a, y in zip(scaled, cycles)]
    residual_std = math.sqrt(sum(r * r for r in residuals) / max(1, n - k))
    return predicted_total, residual_std


@dataclass
class SampleReport:
    """A sampled run's whole-run estimate plus its evidence."""

    workload: str
    config: str
    sampling: SamplingConfig
    total_instructions: int
    windows: List[WindowResult]
    dropped_windows: int
    ipc_estimate: float
    cpi_mean: float
    cpi_stderr: float
    ipc_ci_low: float
    ipc_ci_high: float
    confidence: float
    detailed_instructions: int
    detailed_cycles: int
    #: Which estimator produced ``ipc_estimate``: "regression" when the
    #: functional-profile control variates were usable, "ratio" otherwise.
    estimator: str = "ratio"
    #: Merged measurement-window stats (StatGroup.as_dict form).
    stats: Dict[str, float] = field(default_factory=dict, repr=False)

    @property
    def detail_fraction(self) -> float:
        return (self.detailed_instructions / self.total_instructions
                if self.total_instructions else 0.0)

    @property
    def estimated_cycles(self) -> int:
        return (int(round(self.total_instructions / self.ipc_estimate))
                if self.ipc_estimate else 0)

    def to_run_result(self) -> RunResult:
        """Adapter so sweeps/experiments can consume sampled runs."""
        stats = dict(self.stats)
        stats.update({
            "sampling.windows": len(self.windows),
            "sampling.dropped_windows": self.dropped_windows,
            "sampling.detail_fraction": self.detail_fraction,
            "sampling.detailed_cycles": self.detailed_cycles,
            "sampling.cpi_stderr": self.cpi_stderr,
            "sampling.ipc_ci_low": self.ipc_ci_low,
            "sampling.ipc_ci_high": self.ipc_ci_high,
            "sampling.regression": 1.0 if self.estimator == "regression"
                                   else 0.0,
        })
        return RunResult(workload=self.workload, config=self.config,
                         ipc=self.ipc_estimate,
                         cycles=self.estimated_cycles,
                         instructions=self.total_instructions,
                         stats=stats)

    def to_dict(self) -> dict:
        """JSON-artifact form (the CLI's ``--json`` and the CI smoke job)."""
        return {
            "workload": self.workload,
            "config": self.config,
            "num_windows": len(self.windows),
            "dropped_windows": self.dropped_windows,
            "warmup_instructions": self.sampling.warmup_instructions,
            "measure_instructions": self.sampling.measure_instructions,
            "total_instructions": self.total_instructions,
            "detailed_instructions": self.detailed_instructions,
            "detailed_cycles": self.detailed_cycles,
            "detail_fraction": round(self.detail_fraction, 6),
            "ipc_estimate": self.ipc_estimate,
            "estimator": self.estimator,
            "cpi_mean": self.cpi_mean,
            "cpi_stderr": self.cpi_stderr,
            "confidence": self.confidence,
            "ipc_ci_low": self.ipc_ci_low,
            "ipc_ci_high": self.ipc_ci_high,
            "windows": [{
                "index": w.index,
                "start_instruction": w.start_instruction,
                "measured_instructions": w.measured_instructions,
                "measured_cycles": w.measured_cycles,
                "ipc": round(w.ipc, 6),
            } for w in self.windows],
        }

    def summary(self) -> str:
        pct = 100 * self.detail_fraction
        return (f"{self.workload}/{self.config}: "
                f"IPC={self.ipc_estimate:.3f} "
                f"[{self.ipc_ci_low:.3f}, {self.ipc_ci_high:.3f}] "
                f"@{100 * self.confidence:.0f}% "
                f"({len(self.windows)} windows, {pct:.1f}% detailed)")


def stitch_windows(windows: Sequence[WindowResult],
                   sampling: SamplingConfig, *,
                   workload: str, config: str,
                   total_instructions: int,
                   profile: Optional[FunctionalProfile] = None
                   ) -> SampleReport:
    """Combine window measurements into the whole-run estimate.

    Two estimators, best-available wins:

    * **ratio** (always computed): instruction-weighted
      ``sum(measured) / sum(measured_cycles)``, the plain SMARTS
      estimate.  Its error is set by the raw window-to-window CPI
      variance, which for branchy integer codes is large even at
      thousand-instruction granularity.
    * **regression** (when a :class:`FunctionalProfile` is available):
      fit window cycles on functional event counts (mispredicts, cache
      misses — the things that *cause* CPI variation), then predict the
      whole run's cycles from the profile's stream totals.  Only the
      *residual* variance survives, typically cutting the error by
      several fold at the same detail budget.  A degenerate fit falls
      back to (or is clamped near) the ratio estimate.

    The confidence interval always describes the estimator actually
    used.
    """
    valid = [w for w in windows if w.measured_instructions > 0]
    dropped = len(windows) - len(valid)
    if not valid:
        raise ConfigurationError("no window measured any instructions")
    measured = sum(w.measured_instructions for w in valid)
    measured_cycles = sum(w.measured_cycles for w in valid)
    # Instruction-weighted ratio estimate: robust to a short tail window.
    ipc_estimate = measured / measured_cycles if measured_cycles else 0.0
    cpis = [w.cpi for w in valid]
    cpi_mean = statistics.fmean(cpis)
    cpi_stderr = (statistics.stdev(cpis) / math.sqrt(len(cpis))
                  if len(cpis) > 1 else 0.0)
    z = _Z_VALUES[sampling.confidence]
    cpi_low = cpi_mean - z * cpi_stderr
    cpi_high = cpi_mean + z * cpi_stderr
    ipc_ci_low = 1.0 / cpi_high if cpi_high > 0 else 0.0
    ipc_ci_high = 1.0 / cpi_low if cpi_low > 0 else math.inf
    estimator = "ratio"

    fit = None
    if profile is not None and profile.totals and ipc_estimate:
        rows = [profile.windows[w.index] for w in valid
                if w.index < len(profile.windows)]
        if len(rows) == len(valid):
            fit = _fit_cycles(rows, [w.measured_cycles for w in valid],
                              profile.totals)
    if fit is not None:
        predicted_cycles, residual_std = fit
        ratio_cycles = measured_cycles / measured * total_instructions
        low_guard = ratio_cycles * (1.0 - _REGRESSION_GUARD)
        high_guard = ratio_cycles * (1.0 + _REGRESSION_GUARD)
        predicted_cycles = min(max(predicted_cycles, low_guard), high_guard)
        n = len(valid)
        mean_measured = measured / n
        blocks = total_instructions / mean_measured
        fpc = math.sqrt(max(0.0, 1.0 - n / blocks))
        cycles_stderr = blocks * residual_std / math.sqrt(n) * fpc
        ipc_estimate = total_instructions / predicted_cycles
        high_cycles = predicted_cycles + z * cycles_stderr
        low_cycles = predicted_cycles - z * cycles_stderr
        ipc_ci_low = (total_instructions / high_cycles
                      if high_cycles > 0 else 0.0)
        ipc_ci_high = (total_instructions / low_cycles
                       if low_cycles > 0 else math.inf)
        estimator = "regression"

    merged = StatGroup("sampled")
    for window in valid:
        merged.merge_snapshot(window.stats)
    return SampleReport(
        workload=workload, config=config, sampling=sampling,
        total_instructions=total_instructions,
        windows=list(windows), dropped_windows=dropped,
        ipc_estimate=ipc_estimate,
        cpi_mean=cpi_mean, cpi_stderr=cpi_stderr,
        ipc_ci_low=ipc_ci_low, ipc_ci_high=ipc_ci_high,
        confidence=sampling.confidence,
        detailed_instructions=sum(w.detailed_instructions for w in valid),
        detailed_cycles=sum(w.detailed_cycles for w in valid),
        estimator=estimator,
        stats=merged.as_dict())


# ---------------------------------------------------------------- top level --
def sample_workload(workload: Union[str, WorkloadSpec],
                    params: ProcessorParams,
                    sampling: Optional[SamplingConfig] = None, *,
                    config_label: str = "",
                    scale: int = 1,
                    max_instructions: Optional[int] = None,
                    warm_code: bool = True,
                    jobs: int = 1,
                    store: Optional[CheckpointStore] = None,
                    progress: Optional[Callable[[str], None]] = None
                    ) -> SampleReport:
    """Estimate a workload's IPC under ``params`` by interval sampling.

    ``jobs`` fans the detailed windows out over a process pool — the
    within-run parallelism full-detail simulation cannot have.  ``store``
    is an optional :class:`CheckpointStore`; on a hit the functional
    warming pass is skipped entirely.
    """
    sampling = sampling if sampling is not None else SamplingConfig()
    sampling.validate()
    spec = resolve_workload(workload)
    program = spec.build(scale)
    budget = (max_instructions if max_instructions is not None
              else spec.default_instructions * scale)

    if progress is not None:
        progress(f"functional pass ({spec.name})")
    total = run_functional(program, max_instructions=budget).instruction_count
    starts = plan_windows(total, sampling)
    ranges = [(start + sampling.warmup_instructions,
               min(start + sampling.window_span, total))
              for start in starts]

    checkpoints = profile = None
    key = None
    if store is not None:
        key = store.key_for(spec.name, params, scale=scale,
                            max_instructions=budget, window_plan=starts,
                            warm_code=warm_code)
        cached = store.get(key)
        if cached is not None:
            checkpoints, raw_profile = cached
            profile = (FunctionalProfile.from_dict(raw_profile)
                       if raw_profile else None)
    if checkpoints is None:
        if progress is not None:
            progress(f"warming pass ({len(starts)} checkpoints)")
        checkpoints, profile = build_checkpoints(
            program, params, starts, total_instructions=total,
            feature_ranges=ranges,
            warm_code=warm_code, warm_data=spec.warm_data)
        if store is not None and key is not None:
            store.put(key, checkpoints,
                      profile.to_dict() if profile is not None else None)

    label = config_label or params.iq.kind
    window_specs = [
        WindowSpec(workload=spec.name, params=params,
                   checkpoint=checkpoint.to_dict(),
                   warmup=sampling.warmup_instructions,
                   measure=sampling.measure_instructions,
                   index=index, scale=scale, stream_limit=total,
                   max_cycles=sampling.max_window_cycles)
        for index, checkpoint in enumerate(checkpoints)]
    if progress is not None:
        progress(f"{len(window_specs)} detailed windows (jobs={jobs})")
    executor = Executor(ExecutionConfig(jobs=jobs))
    outputs = executor.map(run_window, window_specs,
                           labels=[f"{spec.name}/{label}#w{w.index}"
                                   for w in window_specs])
    raise_on_errors(outputs, "sampling window")
    return stitch_windows(outputs, sampling, workload=spec.name,
                          config=label, total_instructions=total,
                          profile=profile)


@dataclass(frozen=True)
class SampledRunSpec:
    """One sampled simulation cell: picklable payload for grid fan-out."""

    workload: str
    params: ProcessorParams
    config_label: str = ""
    sampling: Optional[SamplingConfig] = None
    scale: int = 1
    max_instructions: Optional[int] = None


def run_sampled_cell(spec: SampledRunSpec) -> RunResult:
    """Module-level worker: sampled run -> RunResult (for sweeps/grids).

    Window fan-out stays serial inside the worker (``jobs=1``) — the
    grid is already parallel at the cell level.
    """
    report = sample_workload(spec.workload, spec.params, spec.sampling,
                             config_label=spec.config_label,
                             scale=spec.scale,
                             max_instructions=spec.max_instructions,
                             jobs=1)
    return report.to_run_result()


def compare_with_full(workload: Union[str, WorkloadSpec],
                      params: ProcessorParams,
                      sampling: Optional[SamplingConfig] = None, *,
                      config_label: str = "",
                      scale: int = 1,
                      max_instructions: Optional[int] = None,
                      jobs: int = 1,
                      store: Optional[CheckpointStore] = None,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> Dict[str, float]:
    """Run sampled and full-detail side by side; report the error.

    The validation hook behind ``repro sample --compare-full`` and the
    accuracy tests: ``ipc_error`` is the signed relative error of the
    sampled estimate, ``detail_cycle_ratio`` is how many times fewer
    detailed cycles the sampled run executed.
    """
    report = sample_workload(workload, params, sampling,
                             config_label=config_label, scale=scale,
                             max_instructions=max_instructions, jobs=jobs,
                             store=store, progress=progress)
    if progress is not None:
        progress("full-detail reference run")
    from repro import api
    full = api.run(params, workload, config_label=config_label,
                   scale=scale, max_instructions=max_instructions)
    error = ((report.ipc_estimate - full.ipc) / full.ipc
             if full.ipc else 0.0)
    return {
        "workload": report.workload,
        "config": report.config,
        "sampled_ipc": report.ipc_estimate,
        "full_ipc": full.ipc,
        "ipc_error": error,
        "ipc_ci_low": report.ipc_ci_low,
        "ipc_ci_high": report.ipc_ci_high,
        "full_cycles": full.cycles,
        "detailed_cycles": report.detailed_cycles,
        "detail_cycle_ratio": (full.cycles / report.detailed_cycles
                               if report.detailed_cycles else 0.0),
        "detail_fraction": report.detail_fraction,
    }
