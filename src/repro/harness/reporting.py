"""Text rendering of the paper's tables and figures from RunResults."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.harness.runner import RunResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned fixed-width text table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i])
                           for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def relative_performance(result: RunResult, baseline: RunResult) -> float:
    """IPC of ``result`` relative to ``baseline`` (Figure 2's y-axis)."""
    return result.ipc / baseline.ipc if baseline.ipc else 0.0


def geometric_mean(values: Sequence[float]) -> float:
    filtered = [value for value in values if value > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))


def ascii_series_plot(series: Mapping[str, Mapping[int, float]],
                      title: str = "", width: int = 50) -> str:
    """A small text plot: one row per (label, x) with a proportional bar.

    Used by the Figure 3 bench to show IPC-vs-IQ-size curves in terminals.
    """
    peak = max((value for points in series.values()
                for value in points.values()), default=1.0) or 1.0
    lines = [title] if title else []
    for label in series:
        points = series[label]
        for x in sorted(points):
            value = points[x]
            bar = "#" * max(1, int(width * value / peak)) if value else ""
            lines.append(f"{label:>22s} @{x:<5d} {value:6.3f} {bar}")
        lines.append("")
    return "\n".join(lines)


def table2_report(results: Dict[str, Dict[str, RunResult]]) -> str:
    """Render Table 2: chain usage per benchmark per variant.

    ``results[benchmark][variant]`` with variants base/hmp/lrp/comb.
    """
    headers = ["Benchmark",
               "base avg", "base peak", "hmp avg", "hmp peak",
               "lrp avg", "lrp peak", "comb avg", "comb peak"]
    rows = []
    sums = [0.0] * 8
    benchmarks = sorted(results)
    for benchmark in benchmarks:
        row: List = [benchmark.upper()]
        for index, variant in enumerate(("base", "hmp", "lrp", "comb")):
            run = results[benchmark][variant]
            row.extend([round(run.chains_avg, 1), round(run.chains_peak, 1)])
            sums[2 * index] += run.chains_avg
            sums[2 * index + 1] += run.chains_peak
        rows.append(row)
    count = len(benchmarks) or 1
    rows.append(["Average"] + [round(total / count, 1) for total in sums])
    return format_table(
        headers, rows,
        title="Table 2: chain usage, 512-entry segmented IQ, unlimited chains")


def figure2_report(rel: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Render Figure 2 data: relative performance per benchmark.

    ``rel[benchmark][chain_setting][variant]`` = IPC / ideal-512 IPC.
    """
    chain_settings = ("unlimited", "128 chains", "64 chains")
    variants = ("base", "hmp", "lrp", "comb")
    headers = ["Benchmark", "Chains"] + list(variants)
    rows = []
    for benchmark in sorted(rel):
        for setting in chain_settings:
            if setting not in rel[benchmark]:
                continue
            entry = rel[benchmark][setting]
            rows.append([benchmark, setting]
                        + [f"{100 * entry.get(v, 0):.0f}%" for v in variants])
    return format_table(
        headers, rows,
        title="Figure 2: performance relative to ideal 512-entry IQ")
