"""Analytical IPC surrogate: a queuing model over functional profiles.

Cycle-accurate simulation of a (workload, configuration) grid is the
cost center of every sweep.  This module implements the alternative
explored by Carroll & Lin ("An Analytical Model for Out-of-Order
Superscalar Performance", arXiv 1807.08586) and the interval-analysis
line of work it builds on: predict IPC *analytically* from a one-pass
functional profile of the workload plus the machine configuration, then
spend cycle-accurate simulation only where the analytical answer is
uncertain or competitive.

The model composes throughput bounds, each a classic queuing argument:

* **width** — the pipeline cannot sustain more than
  ``min(fetch, dispatch, issue, commit)`` instructions per cycle;
* **fu:<class>** — each function-unit class is a server pool; with
  ``n_c`` units and a per-instruction service demand ``d_c`` (occupancy
  cycles per instruction, >1 per op for unpipelined units), utilization
  caps IPC at ``n_c / d_c``;
* **dataflow** — the program's dependence-chain critical path (computed
  with L1-hit latencies) bounds IPC at ``N / CP`` regardless of window;
* a **window/memory** term from interval analysis: an instruction
  window of ``W`` entries hides ``W / IPC_core`` cycles of each memory
  miss; the exposed remainder, divided by the achievable memory-level
  parallelism, is added to the busy time (Little's law applied to the
  ROB as the queue and memory as the slow server);
* a **branch** term charging the front-end refill depth per mispredict.

Per-IQ-kind *window efficiency* factors reflect how much of the nominal
capacity each design converts into useful lookahead (a segmented queue
with chain pushdown wastes some slots; a FIFO-based queue blocks on
heads).  The absolute scale of each (workload, kind) pair is then
pinned by **anchor calibration**: simulate the smallest configuration
of each kind, take the ratio of simulated to predicted IPC, and apply
it multiplicatively to the rest of that kind's size curve.  The
surrogate's *uncertainty* grows with distance (in log2 window size)
from the calibration anchor; pruning keeps every cell whose optimistic
band still reaches the pessimistic band of the best cell, so the true
per-workload winner is never discarded (tested in
``tests/harness/test_surrogate.py``).

Entry points:

* :class:`Surrogate` — profile, predict, calibrate;
* :func:`prune_and_run` — the pruning pre-pass shared by
  :meth:`repro.harness.sweep.Sweep.run` and
  :class:`repro.harness.experiments.ExperimentRunner`;
* :func:`validation_report` — predicted-vs-simulated comparison over a
  grid, behind ``python -m repro surrogate`` and the bench artifact's
  ``surrogate`` section.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.params import ProcessorParams
from repro.harness.runner import RunResult
from repro.isa.executor import execute
from repro.isa.opcodes import FUClass
from repro.workloads import WORKLOADS

#: Documented accuracy contract: mean absolute relative IPC error of the
#: calibrated surrogate versus full-detail simulation, over the non-anchor
#: cells of the bench grid (see ``validation_report``).  CI asserts the
#: bound on every run; ``tests/harness/test_surrogate.py`` enforces it on
#: a representative grid.
SURROGATE_ERROR_BOUND = 0.25

#: Fraction of nominal IQ capacity each design converts into useful
#: lookahead (window efficiency).  Rough priors; anchor calibration pins
#: the absolute scale per (workload, kind), so only the *shape* across
#: sizes leans on these.
WINDOW_EFFICIENCY = {
    "ideal": 1.0,
    "delay_tracking": 0.95,
    "segmented": 0.85,
    "prescheduled": 0.70,
    "distance": 0.65,
    "fifo": 0.55,
}

#: Issue-capability discount per kind (scheduling restrictions that cost
#: throughput even with a warm window).  Absorbed by calibration when an
#: anchor is available.
ISSUE_EFFICIENCY = {
    "ideal": 1.0,
    "delay_tracking": 0.97,
    "segmented": 0.92,
    "prescheduled": 0.80,
    "distance": 0.75,
    "fifo": 0.70,
}

_DEFAULT_EFFICIENCY = 0.7


@dataclass
class WorkloadProfile:
    """One functional pass over a workload: everything the model needs.

    Collected once per workload (independent of IQ configuration) by
    :func:`collect_profile` — the FU-class mix, the dependence-chain
    critical path under L1-hit latencies, functional cache-miss counts
    from the warming tag arrays, and branch-predictor accuracy from the
    warming predictor replica.
    """

    workload: str
    scale: int
    instructions: int
    #: Occupancy cycles demanded per dynamic instruction, by FU class.
    fu_demand: Dict[str, float]
    #: Dependence-chain critical path (cycles), loads at L1-hit latency.
    critical_path: int
    loads: int
    stores: int
    #: Data references that missed L1 but hit L2 (functional tags).
    l2_hits: int
    #: Data references that missed the L2 (functional tags).
    mem_misses: int
    branches: int
    mispredicts: int

    @property
    def miss_density(self) -> float:
        """Main-memory misses per dynamic instruction."""
        return self.mem_misses / self.instructions if self.instructions else 0.0


@dataclass
class SurrogatePrediction:
    """Analytical IPC estimate with its bound decomposition."""

    ipc: float
    #: Throughput bounds by name ("width", "fu:int_alu", "dataflow", ...).
    bounds: Dict[str, float]
    #: Which term limits performance ("memory"/"branch" when the additive
    #: stall terms dominate the binding throughput bound).
    binding: str
    #: Relative half-width of the error band; pruning keeps any cell whose
    #: ``high`` still reaches the best cell's ``low``.
    uncertainty: float
    calibrated: bool = False

    @property
    def low(self) -> float:
        return self.ipc * (1.0 - self.uncertainty)

    @property
    def high(self) -> float:
        return self.ipc * (1.0 + self.uncertainty)


def collect_profile(workload: str, *, scale: int = 1,
                    max_instructions: Optional[int] = None,
                    params: Optional[ProcessorParams] = None
                    ) -> WorkloadProfile:
    """One functional pass: FU mix, critical path, miss and branch counts.

    Uses the sampling subsystem's functional warming models (tag-only
    caches, predictor replica) so the profile sees exactly the residency
    behaviour the detailed hierarchy would, at interpreter speed.
    """
    from repro.sampling.warming import BranchWarmer, TagArray
    spec = WORKLOADS[workload]
    program = spec.build(scale)
    base = params if params is not None else ProcessorParams()
    l1d = TagArray(base.memory.l1d)
    l2 = TagArray(base.memory.l2)
    if spec.warm_data:
        line = base.memory.l2.line_bytes
        for segment in program.segments.values():
            for byte_addr in range(segment.base,
                                   segment.base + segment.bytes, line):
                l2.warm_line(byte_addr)
    branches = BranchWarmer(base)
    load_latency = base.memory.l1d.hit_latency
    demand: Dict[str, float] = {}
    ready: Dict[int, int] = {}
    critical_path = 0
    count = loads = stores = l2_hits = mem_misses = 0
    for dyn in execute(program, max_instructions):
        count += 1
        info = dyn.static.info
        if info.fu_class is not FUClass.NONE:
            occupancy = 1.0 if info.pipelined else float(info.latency)
            name = info.fu_class.value
            demand[name] = demand.get(name, 0.0) + occupancy
        branches.observe(dyn)
        latency = info.latency
        if dyn.is_load:
            loads += 1
            latency = load_latency
        if dyn.is_store:
            stores += 1
        if dyn.is_mem and dyn.mem_addr is not None:
            if not l1d.access(dyn.mem_addr, dyn.is_store):
                if l2.access(dyn.mem_addr, dyn.is_store):
                    l2_hits += 1
                else:
                    mem_misses += 1
        start = 0
        for src in dyn.srcs:
            start = max(start, ready.get(src, 0))
        done = start + latency
        if dyn.dest is not None:
            ready[dyn.dest] = done
        if done > critical_path:
            critical_path = done
    per_inst = {name: total / count for name, total in demand.items()} \
        if count else {}
    return WorkloadProfile(
        workload=workload, scale=scale, instructions=count,
        fu_demand=per_inst, critical_path=critical_path,
        loads=loads, stores=stores, l2_hits=l2_hits,
        mem_misses=mem_misses, branches=branches.branches,
        mispredicts=branches.mispredicts)


def _effective_window(params: ProcessorParams) -> float:
    kind = params.iq.kind
    eta = WINDOW_EFFICIENCY.get(kind, _DEFAULT_EFFICIENCY)
    return eta * min(params.iq.size, params.rob_size,
                     params.effective_lsq_size)


@dataclass
class _Parts:
    """Predicted cycle decomposition, the unit calibration operates on."""

    busy: float            # N / effective core throughput
    stall: float           # exposed memory latency + branch recovery
    bounds: Dict[str, float]
    binding: str
    min_bound: float       # hard IPC ceiling (width/FU/dataflow)


def _predict_parts(profile: WorkloadProfile,
                   params: ProcessorParams) -> _Parts:
    n = max(profile.instructions, 1)
    kind = params.iq.kind
    bounds: Dict[str, float] = {
        "width": float(min(params.fetch_width, params.dispatch_width,
                           params.issue_width, params.commit_width)),
        "dataflow": n / max(profile.critical_path, 1),
    }
    for name, per_inst in profile.fu_demand.items():
        if per_inst > 0:
            units = params.fu_counts.get(name, 0)
            bounds[f"fu:{name}"] = units / per_inst if units else 0.0
    phi = ISSUE_EFFICIENCY.get(kind, _DEFAULT_EFFICIENCY)
    binding = min(bounds, key=lambda name: bounds[name])
    min_bound = bounds[binding]
    ipc_core = max(min_bound * phi, 1e-6)
    # Lookahead cannot usefully run past the next mispredicted branch;
    # cap both windows at a couple of misprediction intervals.
    run_cap = (2.0 * n / profile.mispredicts
               if profile.mispredicts else float("inf"))
    # Short latencies (L2 hits) are hidden by the *issue* window the IQ
    # design provides; main-memory misses outlive the IQ (the load sits
    # in the LSQ/ROB once issued), so their overlap is governed by the
    # retirement window, not the scheduler.
    window_iq = min(max(_effective_window(params), 1.0), run_cap)
    window_mem = min(max(float(min(params.rob_size,
                                   params.effective_lsq_size)), 1.0),
                     run_cap)
    memory = params.memory
    mem_latency = (memory.l1d.hit_latency + memory.l2.hit_latency
                   + memory.main_memory_latency)
    l2_latency = memory.l1d.hit_latency + memory.l2.hit_latency
    mshr = memory.l1d.mshr_entries

    def stall(events: int, latency: int, window: float) -> float:
        if not events:
            return 0.0
        exposed = max(0.0, latency - window / ipc_core)
        if not exposed:
            return 0.0
        # Misses that fall inside one window of each other overlap; the
        # achievable MLP is their density over the window, floor 1,
        # capped by the miss-handling registers.
        mlp = min(float(mshr), max(1.0, events / n * window))
        return events / mlp * exposed

    # Streaming misses are pinned by pin bandwidth regardless of window.
    bandwidth_floor = (profile.mem_misses * memory.l1d.line_bytes
                       / memory.memory_bandwidth_bytes)
    stall_mem = max(stall(profile.mem_misses, mem_latency, window_mem),
                    bandwidth_floor)
    stall_l2 = stall(profile.l2_hits, l2_latency, window_iq)
    # Each mispredict pays the front-end refill plus the drain of the
    # speculated window behind the branch (interval analysis's recovery
    # ramp), which is why bigger windows gain sub-linearly on branchy code.
    stall_branch = profile.mispredicts * (params.dispatch_pipeline_depth + 1
                                          + window_iq / ipc_core)
    busy = n / ipc_core
    stall_total = stall_mem + stall_l2 + stall_branch
    if stall_mem + stall_l2 > max(busy, stall_branch):
        binding = "memory"
    elif stall_branch > max(busy, stall_mem + stall_l2):
        binding = "branch"
    return _Parts(busy=busy, stall=stall_total, bounds=bounds,
                  binding=binding, min_bound=min_bound)


def predict_ipc(profile: WorkloadProfile,
                params: ProcessorParams) -> SurrogatePrediction:
    """Uncalibrated analytical IPC for ``profile`` on ``params``."""
    n = max(profile.instructions, 1)
    parts = _predict_parts(profile, params)
    ipc = min(n / (parts.busy + parts.stall), parts.min_bound)
    return SurrogatePrediction(ipc=ipc, bounds=parts.bounds,
                               binding=parts.binding, uncertainty=0.35)


@dataclass
class _Anchor:
    core_scale: float      # correction on the busy term
    stall_scale: float     # correction on the stall terms
    window: float


class Surrogate:
    """Profile cache + calibration state for one grid's predictions.

    ``calibrate`` pins a (workload, IQ-kind) pair to one simulated
    result; subsequent ``predict`` calls for that pair scale by the
    anchor's simulated/predicted ratio and carry an uncertainty that
    grows with log2 distance from the anchor's effective window size.
    """

    def __init__(self, *, scale: int = 1,
                 max_instructions: Optional[int] = None) -> None:
        self.scale = scale
        self.max_instructions = max_instructions
        self._profiles: Dict[str, WorkloadProfile] = {}
        self._anchors: Dict[Tuple[str, str], _Anchor] = {}

    def profile(self, workload: str) -> WorkloadProfile:
        if workload not in self._profiles:
            self._profiles[workload] = collect_profile(
                workload, scale=self.scale,
                max_instructions=self.max_instructions)
        return self._profiles[workload]

    def calibrate(self, workload: str, params: ProcessorParams,
                  simulated_ipc: float) -> None:
        """Pin (workload, kind) to one simulated point, in cycle space.

        The stall terms are *physical* (they shrink as the window grows);
        scaling the whole prediction multiplicatively would scale them
        into larger configurations where they no longer exist.  Instead,
        attribute the anchor's residual cycles to the busy term when that
        is consistent (``core_scale``), falling back to a uniform cycle
        scale when the model overestimated the stalls.
        """
        profile = self.profile(workload)
        if simulated_ipc <= 0 or not profile.instructions:
            return
        parts = _predict_parts(profile, params)
        sim_cycles = profile.instructions / simulated_ipc
        residual_busy = sim_cycles - parts.stall
        if residual_busy >= 0.2 * parts.busy:
            core_scale = residual_busy / parts.busy
            stall_scale = 1.0
        else:
            core_scale = stall_scale = sim_cycles / (parts.busy + parts.stall)
        self._anchors[(workload, params.iq.kind)] = _Anchor(
            core_scale=min(20.0, max(0.05, core_scale)),
            stall_scale=min(20.0, max(0.05, stall_scale)),
            window=max(_effective_window(params), 1.0))

    def predict(self, workload: str,
                params: ProcessorParams) -> SurrogatePrediction:
        profile = self.profile(workload)
        prediction = predict_ipc(profile, params)
        anchor = self._anchors.get((workload, params.iq.kind))
        if anchor is None:
            return prediction
        parts = _predict_parts(profile, params)
        cycles = (parts.busy * anchor.core_scale
                  + parts.stall * anchor.stall_scale)
        n = max(profile.instructions, 1)
        prediction.ipc = min(n / max(cycles, 1e-9), parts.min_bound)
        distance = abs(math.log2(max(_effective_window(params), 1.0)
                                 / anchor.window))
        prediction.uncertainty = min(0.5, 0.10 + 0.15 * distance)
        prediction.calibrated = True
        return prediction


# ------------------------------------------------------------------ pruning
Cell = Tuple[str, str, ProcessorParams]     # (workload, label, params)


@dataclass
class PruneOutcome:
    """What the pruning pre-pass did to a grid.

    ``results`` covers every requested cell: simulated cells carry real
    ``RunResult``s, pruned cells carry surrogate-filled ones (marked by
    ``stats["surrogate.predicted"]``).
    """

    results: Dict[Tuple[str, str], RunResult]
    anchors: List[Tuple[str, str]]
    simulated: List[Tuple[str, str]]
    predicted: Dict[Tuple[str, str], SurrogatePrediction] = \
        field(default_factory=dict)
    surrogate: Optional[Surrogate] = None

    @property
    def pruned(self) -> List[Tuple[str, str]]:
        return sorted(self.predicted)


def surrogate_result(workload: str, label: str,
                     prediction: SurrogatePrediction,
                     instructions: int) -> RunResult:
    """A ``RunResult`` standing in for a pruned cell.

    ``stats["surrogate.predicted"]`` marks it; cycles are back-computed
    from the predicted IPC so ratios stay meaningful in reports.
    """
    ipc = max(prediction.ipc, 1e-9)
    return RunResult(
        workload=workload, config=label, ipc=prediction.ipc,
        cycles=int(round(instructions / ipc)), instructions=instructions,
        stats={"surrogate.predicted": 1.0,
               "surrogate.uncertainty": prediction.uncertainty,
               "surrogate.ipc_low": prediction.low,
               "surrogate.ipc_high": prediction.high})


def _run_cells(cells: Sequence[Cell], budget: Callable[[str], Optional[int]],
               *, execution, progress) -> List[RunResult]:
    from repro.fabric import Executor, RunSpec, raise_on_errors
    specs = [RunSpec(workload, params, config_label=label,
                     max_instructions=budget(workload))
             for workload, label, params in cells]
    if progress is not None:
        for spec in specs:
            progress(f"{spec.workload}/{spec.config_label}")
    results = Executor(execution).run_specs(specs)
    raise_on_errors(results, "surrogate pruning")
    return results


def pareto_band_split(cells: Sequence[Cell],
                      results: Dict[Tuple[str, str], RunResult],
                      predictions: Dict[Tuple[str, str],
                                        SurrogatePrediction]
                      ) -> Tuple[List[Cell],
                                 Dict[Tuple[str, str],
                                      SurrogatePrediction]]:
    """The phase-2 planning rule, standalone: which predicted cells stay
    competitive with the per-workload Pareto front?

    Each workload's bar is the most pessimistic-best IPC among its known
    results and predicted lows; a predicted cell survives when its
    optimistic band reaches that bar (too-uncertain cells survive by
    construction).  Returns ``(keep, pruned)`` — cells to simulate, and
    the predictions standing in for the rest.  The job service uses this
    directly to decide which sweep children to submit.
    """
    by_cell = {(workload, label): params
               for workload, label, params in cells}
    per_workload: Dict[str, List[Tuple[str, str]]] = {}
    for workload, label, _params in cells:
        per_workload.setdefault(workload, []).append((workload, label))
    keep: List[Cell] = []
    pruned: Dict[Tuple[str, str], SurrogatePrediction] = {}
    for workload, workload_cells in per_workload.items():
        best_low = max(
            (results[cell].ipc if cell in results
             else predictions[cell].low)
            for cell in workload_cells)
        for cell in workload_cells:
            if cell in results:
                continue
            if predictions[cell].high >= best_low:
                keep.append((cell[0], cell[1], by_cell[cell]))
            else:
                pruned[cell] = predictions[cell]
    return keep, pruned


def prune_and_run(cells: Sequence[Cell], *,
                  max_instructions: Optional[int] = None,
                  budgets: Optional[Dict[str, int]] = None,
                  execution=None,
                  jobs: int = 1, cache=None,
                  progress: Optional[Callable[[str], None]] = None,
                  surrogate: Optional[Surrogate] = None) -> PruneOutcome:
    """Run a grid with the surrogate as a pruning pre-pass.

    Phase 0 probes the result cache for every cell: hits become free
    results *and* free calibration points (the smallest cached
    configuration per (workload, IQ kind) anchors the surrogate), so a
    warm cache — e.g. one shared with the job service — can anchor the
    whole grid without simulating anything.  Phase 1 simulates one
    *anchor* per still-uncalibrated (workload, IQ kind) — the smallest
    configuration of that kind — and calibrates the surrogate on it.
    Phase 2 predicts every remaining cell and keeps those whose
    optimistic IPC band reaches the pessimistic band of the per-workload
    best (i.e. cells within the error band of the Pareto front, plus
    anything too uncertain to rule out).  Phase 3 simulates the kept
    cells; pruned cells are filled with :func:`surrogate_result`.
    """
    if execution is None:
        from repro.fabric import ExecutionConfig
        execution = ExecutionConfig(jobs=jobs, cache=cache)
    cache = execution.cache
    if surrogate is None:
        surrogate = Surrogate(max_instructions=max_instructions)

    def budget(workload: str) -> Optional[int]:
        if budgets is not None:
            return budgets.get(workload, max_instructions)
        return max_instructions

    by_cell: Dict[Tuple[str, str], ProcessorParams] = {}
    for workload, label, params in cells:
        by_cell[(workload, label)] = params

    # Phase 0: harvest cached cells (results + calibration for free).
    results: Dict[Tuple[str, str], RunResult] = {}
    instructions_for: Dict[str, int] = {}
    calibrated: set = set()
    if cache is not None:
        cached_by_kind: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for workload, label, params in cells:
            hit = cache.get(cache.key_for(
                workload, params, max_instructions=budget(workload)))
            if hit is None:
                continue
            if hit.config != label and label:
                hit = RunResult(
                    workload=hit.workload, config=label, ipc=hit.ipc,
                    cycles=hit.cycles, instructions=hit.instructions,
                    stats=hit.stats)
            cell = (workload, label)
            results[cell] = hit
            instructions_for.setdefault(workload, hit.instructions)
            kind = (workload, params.iq.kind)
            if (kind not in cached_by_kind or params.iq.size
                    < by_cell[cached_by_kind[kind]].iq.size):
                cached_by_kind[kind] = cell
        for (workload, _iq_kind), (_, label) in cached_by_kind.items():
            cell = (workload, label)
            surrogate.calibrate(workload, by_cell[cell],
                                results[cell].ipc)
        calibrated = set(cached_by_kind)

    # Phase 1: anchors (smallest configuration of each kind, per
    # workload) for the kinds phase 0 left uncalibrated.
    anchor_for: Dict[Tuple[str, str], Tuple[str, str]] = {}
    for workload, label, params in cells:
        key = (workload, params.iq.kind)
        if key in calibrated:
            continue
        if (key not in anchor_for
                or params.iq.size < by_cell[anchor_for[key]].iq.size):
            anchor_for[key] = (workload, label)
    anchors = sorted(set(anchor_for.values()))
    anchor_cells = [(w, l, by_cell[(w, l)]) for w, l in anchors]
    anchor_results = _run_cells(anchor_cells, budget, execution=execution,
                                progress=progress)
    for (workload, label, params), result in zip(anchor_cells,
                                                 anchor_results):
        results[(workload, label)] = result
        instructions_for[workload] = result.instructions
        surrogate.calibrate(workload, params, result.ipc)

    # Phase 2: predict the rest; keep near-Pareto / uncertain cells.
    predictions: Dict[Tuple[str, str], SurrogatePrediction] = {}
    for workload, label, params in cells:
        cell = (workload, label)
        if cell not in results:
            predictions[cell] = surrogate.predict(workload, params)
    keep, pruned = pareto_band_split(cells, results, predictions)

    # Phase 3: simulate the keepers, fill the pruned cells analytically.
    for (workload, label, _), result in zip(
            keep, _run_cells(keep, budget, execution=execution,
                             progress=progress)):
        results[(workload, label)] = result
    for (workload, label), prediction in pruned.items():
        results[(workload, label)] = surrogate_result(
            workload, label, prediction,
            instructions_for.get(workload, 0))
    return PruneOutcome(
        results=results, anchors=anchors,
        simulated=sorted(set(anchors)
                         | {(w, l) for w, l, _ in keep}),
        predicted=pruned, surrogate=surrogate)


# --------------------------------------------------------------- validation
def default_grid() -> List[Tuple[str, ProcessorParams]]:
    """The bench grid the surrogate's accuracy contract is scored on:
    two sizes of each scalable kind plus the paper-adjacent baselines."""
    from repro.harness import configs
    return [("ideal-32", configs.ideal(32)),
            ("ideal-128", configs.ideal(128)),
            ("seg-128", configs.segmented(128, 64, "comb")),
            ("seg-512", configs.segmented(512, 128, "comb")),
            ("presched-24", configs.prescheduled(24)),
            ("dtrack-64", configs.delay_tracking(64)),
            ("dtrack-256", configs.delay_tracking(256))]


def validation_report(workloads: Sequence[str],
                      grid_configs: Sequence[Tuple[str, ProcessorParams]], *,
                      max_instructions: Optional[int] = None,
                      execution=None,
                      jobs: int = 1, cache=None,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> dict:
    """Predicted-vs-simulated IPC over a full grid (JSON-serializable).

    Every cell is simulated in full detail; the surrogate is calibrated
    on the per-(workload, kind) anchors and then scored on the remaining
    cells.  ``mean_abs_rel_error`` over non-anchor cells is the number
    the :data:`SURROGATE_ERROR_BOUND` contract covers (anchors match by
    construction and are excluded from the score).
    """
    cells: List[Cell] = [(workload, label, params)
                         for workload in workloads
                         for label, params in grid_configs]
    if execution is None:
        from repro.fabric import ExecutionConfig
        execution = ExecutionConfig(jobs=jobs, cache=cache)
    simulated = _run_cells(cells, lambda _w: max_instructions,
                           execution=execution, progress=progress)
    surrogate = Surrogate(max_instructions=max_instructions)
    anchor_for: Dict[Tuple[str, str], Tuple[str, str, float]] = {}
    for (workload, label, params), result in zip(cells, simulated):
        key = (workload, params.iq.kind)
        current = anchor_for.get(key)
        if current is None or params.iq.size < current[2]:
            anchor_for[key] = (workload, label, params.iq.size)
    anchors = {(workload, label)
               for workload, label, _size in anchor_for.values()}
    for (workload, label, params), result in zip(cells, simulated):
        if (workload, label) in anchors:
            surrogate.calibrate(workload, params, result.ipc)
    rows = []
    errors = []
    for (workload, label, params), result in zip(cells, simulated):
        prediction = surrogate.predict(workload, params)
        rel_error = (abs(prediction.ipc - result.ipc) / result.ipc
                     if result.ipc else 0.0)
        is_anchor = (workload, label) in anchors
        if not is_anchor:
            errors.append(rel_error)
        rows.append({
            "workload": workload, "config": label,
            "model": params.iq.kind, "anchor": is_anchor,
            "simulated_ipc": round(result.ipc, 4),
            "predicted_ipc": round(prediction.ipc, 4),
            "rel_error": round(rel_error, 4),
            "uncertainty": round(prediction.uncertainty, 4),
            "binding": prediction.binding,
        })
    mean_error = sum(errors) / len(errors) if errors else 0.0
    max_error = max(errors) if errors else 0.0
    return {
        "schema": 1,
        "error_bound": SURROGATE_ERROR_BOUND,
        "cells": rows,
        "scored_cells": len(errors),
        "mean_abs_rel_error": round(mean_error, 4),
        "max_abs_rel_error": round(max_error, 4),
        "within_bound": mean_error <= SURROGATE_ERROR_BOUND,
    }


def render_report(report: dict) -> str:
    """Human-readable table for ``python -m repro surrogate``."""
    from repro.harness.reporting import format_table
    rows = [[row["workload"], row["config"], row["model"],
             "yes" if row["anchor"] else "",
             row["simulated_ipc"], row["predicted_ipc"],
             f"{row['rel_error'] * 100:.1f}%", row["binding"]]
            for row in report["cells"]]
    table = format_table(
        ["benchmark", "config", "model", "anchor", "sim ipc",
         "pred ipc", "error", "binding"], rows,
        title="surrogate validation: predicted vs simulated IPC")
    verdict = "PASS" if report["within_bound"] else "FAIL"
    summary = (f"mean |error| {report['mean_abs_rel_error'] * 100:.1f}% "
               f"(max {report['max_abs_rel_error'] * 100:.1f}%) over "
               f"{report['scored_cells']} non-anchor cells; bound "
               f"{report['error_bound'] * 100:.0f}% -> {verdict}")
    return f"{table}\n{summary}"
