"""Simulator-throughput benchmark behind ``python -m repro bench``.

Four measurements, one JSON artifact:

* **Serial throughput** — CPU-time simulations per (workload,
  configuration) pair (best of :data:`SERIAL_REPEATS` timed runs;
  ``time.process_time`` so host scheduling noise cannot masquerade as
  simulator changes) and report kilo-cycles/sec and kilo-insts/sec,
  the simulator's native speed metric.  This is the number the hot-path
  optimisations move.  Each row also carries the run's energy-proxy
  breakdown (:mod:`repro.harness.energy`) so the power trade-off the
  paper's section 7 raises is tracked alongside speed.
* **Sweep scaling** — wall-clock one workload x configuration grid three
  ways: serially with a cold cache, fanned out over ``jobs`` workers with
  a cold cache (the process-pool speedup), and again against the
  now-warm cache (the cache speedup).
* **Sampling speedup** — wall-clock one sampled run
  (:mod:`repro.sampling`) against the equivalent full-detail run and
  report the wall-clock and detailed-cycle ratios.
* **Metrics + tracing overhead** — one instrumented run embedding the
  :mod:`repro.obs` windowed time-series means (pipeline balance PR over
  PR), plus the cost of tracing the same run into a counting sink.

The artifact is written as ``BENCH_<date>.json`` (repo root by
convention) so the performance trajectory is tracked PR over PR;
``--compare`` diffs against an older artifact and reports per-config
throughput and energy-per-instruction changes.
"""

from __future__ import annotations

import datetime
import json
import math
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import api
from repro.harness import configs
from repro.harness.cache import ResultCache
from repro.harness.energy import EnergyModel, energy_per_instruction
from repro.harness.sweep import Sweep

#: Schema 8 adds the ``profile`` section: a per-stage inclusive-time
#: breakdown (dispatch / fetch / issue / commit / IQ-engine) of one
#: profiled serial cell, so the Amdahl split the pipeline-kernel work
#: targets is tracked across artifacts, not just eyeballed from
#: ``--profile`` output.  ``--compare`` against pre-schema-8 artifacts
#: degrades via ``missing_sections`` as before.
#: Schema 7 records the execution backend the sweep section ran on
#: (``sweep.backend``; see docs/fabric.md) and adds the ``fabric``
#: section — the same tiny-budget grid executed on each local backend so
#: per-cell dispatch overhead is tracked PR over PR.  ``--compare``
#: against pre-schema-7 artifacts degrades via ``missing_sections`` as
#: before.  Schema 6 adds a per-row ``kernels`` field (the segmented-IQ
#: kernel backend active for the run: ``"py"`` or ``"compiled"``; see
#: docs/performance.md) and ``--compare`` warns on backend-mismatched
#: rows instead of silently diffing them.  Schema 5 annotates every
#: serial row key with its IQ model kind
#: (``"swim/seg-512-128ch [segmented]"``), adds a per-row ``model``
#: field and a sweep-section ``models`` map so multi-model grids are
#: unambiguous, and embeds the analytical-surrogate validation section
#: (predicted vs simulated IPC; docs/models.md).  Schema 4 added
#: per-row ``skip_ratio``/``skip_windows`` (docs/performance.md).
SCHEMA_VERSION = 8

#: Serial-throughput configurations: the paper's headline design points.
SERIAL_CONFIGS: List[Tuple[str, object]] = [
    ("seg-512-128ch", lambda: configs.segmented(512, 128, "comb")),
    ("seg-128-64ch", lambda: configs.segmented(128, 64, "comb")),
    ("ideal-128", lambda: configs.ideal(128)),
    ("presched-24", lambda: configs.prescheduled(24)),
    ("dtrack-128", lambda: configs.delay_tracking(128)),
]

#: Sweep grid: 4 workloads x 7 configurations (Fig. 2/3 shaped).
SWEEP_WORKLOADS = ["swim", "twolf", "gcc", "mgrid"]
SWEEP_CONFIGS: List[Tuple[str, object]] = [
    ("ideal-64", lambda: configs.ideal(64)),
    ("ideal-256", lambda: configs.ideal(256)),
    ("seg-128", lambda: configs.segmented(128, 64, "comb")),
    ("seg-256", lambda: configs.segmented(256, 128, "comb")),
    ("seg-512", lambda: configs.segmented(512, 128, "comb")),
    ("fifo-64", lambda: configs.fifo(64)),
    ("dtrack-128", lambda: configs.delay_tracking(128)),
]

QUICK_SERIAL = SERIAL_CONFIGS[:2]
QUICK_SWEEP_WORKLOADS = SWEEP_WORKLOADS[:2]
QUICK_SWEEP_CONFIGS = SWEEP_CONFIGS[:3]


def measure_calibration(repeats: int = 3) -> float:
    """CPU seconds for a fixed pure-Python spin (best of ``repeats``).

    Virtualized hosts deliver epoch-scale speed swings (steal time,
    frequency scaling) that even ``process_time`` cannot factor out:
    the same deterministic work costs a different number of CPU seconds
    in different minutes.  Recording a constant-work reference alongside
    every artifact lets ``--compare`` distinguish "the simulator got
    faster" from "the host got faster" — the calibration ratio is the
    host's contribution.
    """
    best = None
    for _ in range(max(1, repeats)):
        start = time.process_time()
        total = 0
        for i in range(2_000_000):
            total += i ^ (i >> 3)
        elapsed = time.process_time() - start
        if best is None or elapsed < best:
            best = elapsed
    return round(best, 4)


def _geomean(values: Sequence[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


#: Timed repetitions per serial cell; the best CPU time is reported.
#: A single wall-clock shot is at the mercy of whatever else the host
#: runs during that cell — on shared single-CPU containers the observed
#: noise is ±30%, which swamps real hot-path deltas.  The minimum over
#: a few process-time repeats is the standard estimator for "how fast
#: does this code go".
SERIAL_REPEATS = 3


def measure_serial(workloads: Sequence[str], serial_configs,
                   max_instructions: int, repeats: int = SERIAL_REPEATS,
                   progress=None) -> Dict[str, Dict[str, float]]:
    """Time serial simulations per (workload, config) pair, best-of-N
    CPU time.

    Each row carries throughput numbers plus the energy-proxy breakdown
    of the run (relative units; see :mod:`repro.harness.energy`).
    Repeats bypass the result cache (a cache hit would time a JSON
    read, not the simulator); runs are deterministic, so every repeat
    produces the identical result and only the clock varies.
    """
    from repro.core.segmented.kernels import backend as kernel_backend
    model = EnergyModel()
    out: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        for label, factory in serial_configs:
            if progress is not None:
                progress(f"serial {workload}/{label}")
            params = factory()
            seconds = None
            for _ in range(max(1, repeats)):
                # CPU time, not wall: on shared hosts the process gets
                # descheduled for arbitrary stretches, and those gaps
                # say nothing about simulator speed.
                start = time.process_time()
                result = api.run(params, workload, config_label=label,
                                 max_instructions=max_instructions)
                elapsed = time.process_time() - start
                if seconds is None or elapsed < seconds:
                    seconds = elapsed
            breakdown = model.estimate_run(result, params)
            skipped = result.stats.get("skip.cycles_skipped", 0)
            out[f"{workload}/{label} [{params.iq.kind}]"] = {
                "model": params.iq.kind,
                "kernels": kernel_backend(),
                "cycles": result.cycles,
                "instructions": result.instructions,
                "seconds": round(seconds, 4),
                "kcycles_per_sec": round(result.cycles / seconds / 1e3, 2),
                "kinsts_per_sec": round(
                    result.instructions / seconds / 1e3, 2),
                "skip_ratio": round(skipped / result.cycles, 4)
                if result.cycles else 0.0,
                "skip_windows": int(result.stats.get("skip.windows", 0)),
                "energy": {key: round(value, 1)
                           for key, value in breakdown.items()},
                "energy_per_instruction": round(
                    energy_per_instruction(breakdown, result.instructions),
                    4),
            }
    return out


def _build_sweep(workloads, sweep_configs, max_instructions) -> Sweep:
    sweep = Sweep(workloads=list(workloads),
                  max_instructions=max_instructions)
    for label, factory in sweep_configs:
        sweep.add_config(label, factory())
    return sweep


def measure_sweep(workloads, sweep_configs, max_instructions: int,
                  jobs: int, backend: str = "local-process",
                  progress=None) -> Dict[str, object]:
    """Wall-clock the grid cold-serial, cold-parallel, and cache-warm."""
    from repro.fabric import ExecutionConfig
    cells = len(workloads) * len(sweep_configs)

    if progress is not None:
        progress(f"sweep: {cells} cells serial (cold)")
    start = time.perf_counter()
    _build_sweep(workloads, sweep_configs, max_instructions).run()
    serial_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        if progress is not None:
            progress(f"sweep: {cells} cells jobs={jobs} ({backend}, cold)")
        start = time.perf_counter()
        _build_sweep(workloads, sweep_configs, max_instructions).run(
            execution=ExecutionConfig(backend=backend, jobs=jobs,
                                      cache=cache))
        parallel_seconds = time.perf_counter() - start

        if progress is not None:
            progress(f"sweep: {cells} cells cached re-run")
        start = time.perf_counter()
        _build_sweep(workloads, sweep_configs, max_instructions).run(
            execution=ExecutionConfig(jobs=1, cache=cache))
        cached_seconds = time.perf_counter() - start
        cache_hits = cache.hits

    return {
        "workloads": list(workloads),
        "configs": [label for label, _ in sweep_configs],
        "models": {label: factory().iq.kind
                   for label, factory in sweep_configs},
        "cells": cells,
        "max_instructions": max_instructions,
        "jobs": jobs,
        "backend": backend,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 3)
        if parallel_seconds else 0.0,
        "cached_seconds": round(cached_seconds, 3),
        "cached_fraction_of_cold": round(
            cached_seconds / serial_seconds, 4) if serial_seconds else 0.0,
        "cache_hits": cache_hits,
    }


#: Grid for the fabric-overhead comparison: 4 workloads x 4 configs =
#: 16 cells, run with a tiny instruction budget so per-cell dispatch
#: overhead (pool/pickle vs fork-server/shared-memory) is a visible
#: fraction of the cell time.
FABRIC_CELL_BUDGET = 200

#: Timed passes over the fabric grid (after one untimed warm pass).
FABRIC_REPEATS = 3


def measure_fabric(jobs: int, progress=None) -> Dict[str, object]:
    """Per-cell dispatch/transport overhead of each local backend.

    The same 16-cell grid, submitted one cell at a time to *warmed*
    workers — a full untimed pass first, then :data:`FABRIC_REPEATS`
    timed passes, per-cell medians across passes.  Serial submission
    pins the compute identical on every backend and removes scheduler
    jitter; warm workers exclude one-time pool startup; the per-cell
    median discards transient outliers.  What remains per cell is
    the backend's dispatch and result transport (``local-process``
    pickles the whole ``RunResult`` back, ``local-shm`` ships a
    shared-memory stat snapshot) — the overhead ``local-shm`` exists
    to lower.  A backend unavailable on the host (``local-shm`` needs
    fork) is recorded as skipped rather than failing the bench.

    A second, *pipelined* pass submits the same grid through a sliding
    window of ``backend.capacity()`` in-flight cells (the executor's
    discipline).  ``local-shm`` advertises two cells per worker and
    parks finished snapshots in its double-buffered shared memory, so
    the pipelined delta vs ``local-process`` is the dispatch overhead
    the worker-side pipelining hides.
    """
    import statistics

    from repro.common.errors import ConfigurationError
    from repro.fabric import RunSpec, create_backend, raise_on_errors
    fabric_configs = SWEEP_CONFIGS[:4]
    specs = [RunSpec(workload, factory(), config_label=label,
                     max_instructions=FABRIC_CELL_BUDGET)
             for workload in SWEEP_WORKLOADS
             for label, factory in fabric_configs]
    out: Dict[str, object] = {
        "workloads": list(SWEEP_WORKLOADS),
        "configs": [label for label, _ in fabric_configs],
        "cells": len(specs),
        "max_instructions": FABRIC_CELL_BUDGET,
        "repeats": FABRIC_REPEATS,
        "backends": {},
    }
    baseline = None
    for backend in ("local-process", "local-shm"):
        if progress is not None:
            progress(f"fabric: {len(specs)} cells on {backend} "
                     f"(x{FABRIC_REPEATS} after warm-up)")
        try:
            # jobs=2 keeps local-process on its real pool (jobs=1 is
            # the in-process shortcut); submission stays serial.
            back = create_backend(backend, jobs=2)
        except ConfigurationError as exc:
            out["backends"][backend] = {"skipped": str(exc)}
            continue
        try:
            cell_seconds = [[] for _ in specs]
            for rep in range(FABRIC_REPEATS + 1):
                results = []
                for index, spec in enumerate(specs):
                    start = time.perf_counter()
                    handle = back.submit(spec)
                    results.append(handle.result(timeout=300))
                    handle.close()
                    if rep:              # pass 0 warms the workers
                        cell_seconds[index].append(
                            time.perf_counter() - start)
                raise_on_errors(results, f"fabric bench ({backend})")
            pipelined_walls = []
            for _rep in range(FABRIC_REPEATS):
                start = time.perf_counter()
                results = _run_windowed(back, specs)
                pipelined_walls.append(time.perf_counter() - start)
                raise_on_errors(results,
                                f"fabric bench ({backend}, pipelined)")
        finally:
            back.close()
        wall = sum(statistics.median(times) for times in cell_seconds)
        pipelined = statistics.median(pipelined_walls)
        row = {
            "wall_seconds": round(wall, 3),
            "seconds_per_cell": round(wall / len(specs), 4),
            "pipelined_wall_seconds": round(pipelined, 3),
            "pipelined_seconds_per_cell": round(pipelined / len(specs), 4),
        }
        if baseline is None:
            baseline = row
        else:
            if wall:
                row["speedup_vs_local_process"] = round(
                    baseline["wall_seconds"] / wall, 3)
                row["per_cell_overhead_delta"] = round(
                    (baseline["wall_seconds"] - wall) / len(specs), 4)
            if pipelined:
                row["pipelined_speedup_vs_local_process"] = round(
                    baseline["pipelined_wall_seconds"] / pipelined, 3)
                row["pipelined_per_cell_overhead_delta"] = round(
                    (baseline["pipelined_wall_seconds"] - pipelined)
                    / len(specs), 4)
        out["backends"][backend] = row
    return out


def _run_windowed(back, specs) -> List[object]:
    """Submit ``specs`` through a sliding window of ``back.capacity()``
    in-flight cells, retiring oldest-first (the executor's submit
    discipline, minus cache/journal)."""
    results: List[object] = []
    inflight: List[object] = []
    index = 0
    while index < len(specs) or inflight:
        while index < len(specs) and len(inflight) < back.capacity():
            inflight.append(back.submit(specs[index]))
            index += 1
        handle = inflight.pop(0)
        results.append(handle.result(timeout=300))
        handle.close()
    return results


def measure_sampling(workload: str = "twolf", *,
                     quick: bool = False,
                     progress=None) -> Dict[str, object]:
    """Wall-clock one sampled run against its full-detail equivalent."""
    from repro.sampling import SamplingConfig, sample_workload

    params = configs.segmented(128, 64, "comb")
    scale = 2 if quick else 4
    sampling = (SamplingConfig(num_windows=6, warmup_instructions=200,
                               measure_instructions=300) if quick else
                SamplingConfig(num_windows=8, warmup_instructions=500,
                               measure_instructions=500))
    if progress is not None:
        progress(f"sampled {workload} (scale {scale})")
    start = time.perf_counter()
    report = sample_workload(workload, params, sampling, scale=scale)
    sampled_seconds = time.perf_counter() - start

    if progress is not None:
        progress(f"full-detail {workload} (scale {scale})")
    start = time.perf_counter()
    full = api.run(params, workload, scale=scale)
    full_seconds = time.perf_counter() - start
    return {
        "workload": workload,
        "scale": scale,
        "num_windows": sampling.num_windows,
        "sampled_seconds": round(sampled_seconds, 3),
        "full_seconds": round(full_seconds, 3),
        "wall_speedup": round(full_seconds / sampled_seconds, 3)
        if sampled_seconds else 0.0,
        "sampled_ipc": round(report.ipc_estimate, 4),
        "full_ipc": round(full.ipc, 4),
        "detailed_cycles": report.detailed_cycles,
        "full_cycles": full.cycles,
        "detail_cycle_ratio": round(full.cycles / report.detailed_cycles, 2)
        if report.detailed_cycles else 0.0,
    }


def measure_metrics(workload: str, max_instructions: int,
                    progress=None) -> Dict[str, object]:
    """One instrumented run: windowed time series from :mod:`repro.obs`.

    The bench embeds the summarized series (mean windowed IPC,
    issue-slot utilization, occupancies, active chains) so pipeline
    balance is tracked PR over PR alongside raw throughput, plus the
    tracing overhead of the same run with a counting sink attached.
    """
    from repro.obs import MetricsConfig, Tracer, summarize

    class _CountingSink(Tracer):
        def _record(self, event) -> None:
            pass

    params = configs.segmented(128, 64, "comb")
    if progress is not None:
        progress(f"metrics {workload} (instrumented run)")
    result = api.run(params, workload, max_instructions=max_instructions,
                     metrics=MetricsConfig(interval=100))
    start = time.perf_counter()
    api.run(params, workload, max_instructions=max_instructions)
    plain_seconds = time.perf_counter() - start
    sink = _CountingSink()
    start = time.perf_counter()
    api.run(params, workload, max_instructions=max_instructions,
            trace=sink)
    traced_seconds = time.perf_counter() - start
    report = result.metrics or {}
    return {
        "workload": workload,
        "config": "seg-128-64ch",
        "interval": report.get("interval"),
        "samples": report.get("samples"),
        "series_means": summarize(report),
        "events_emitted": sink.emitted,
        "plain_seconds": round(plain_seconds, 3),
        "traced_seconds": round(traced_seconds, 3),
        "tracing_overhead": round(traced_seconds / plain_seconds - 1.0, 4)
        if plain_seconds else 0.0,
    }


#: Sections a BENCH_*.json must carry for ``--compare`` to diff it.
_COMPARE_SECTIONS = ("schema", "serial")


def _bare_key(key: str) -> str:
    """Serial row key without the schema-5 ``" [model]"`` annotation."""
    return key.split(" [", 1)[0]


def compare_with(previous_path: str,
                 serial: Dict[str, Dict[str, float]],
                 calibration: Optional[float] = None) -> Dict[str, Dict]:
    """Per-config throughput and EPI changes vs an older BENCH_*.json.

    Older-schema artifacts degrade gracefully: anything missing from the
    old file is reported under ``missing_sections`` instead of raising,
    and only the rows/fields both artifacts share are diffed.  Diff keys
    keep the current artifact's model annotation
    (``"swim/seg-512-128ch [segmented]"``); pre-schema-5 artifacts are
    matched by the bare ``workload/config`` key.
    """
    with open(previous_path) as handle:
        previous = json.load(handle)
    missing = [section for section in _COMPARE_SECTIONS
               if section not in previous]
    out: Dict[str, Dict] = {
        "previous_schema": previous.get("schema"),
        "kcycles_speedup": {}, "epi_ratio": {}, "kernels_mismatch": {}}
    if missing:
        out["missing_sections"] = missing
    old_calibration = previous.get("machine", {}).get("calibration_seconds")
    if calibration and old_calibration:
        # >1 means the host itself got faster since the old artifact;
        # divide the speedups below by this to isolate code changes.
        out["host_speed_ratio"] = round(old_calibration / calibration, 3)
    if "serial" in missing:
        return out
    old_rows = {_bare_key(key): row
                for key, row in previous["serial"].items()}
    for key, row in serial.items():
        old = old_rows.get(_bare_key(key))
        if not old:
            continue
        # Throughput diffs across different kernel backends measure the
        # backend, not the PR under test — record the mismatch so the
        # summary can warn instead of letting the diff pass silently.
        old_kernels = old.get("kernels")
        if old_kernels is not None and old_kernels != row.get("kernels"):
            out["kernels_mismatch"][key] = {
                "previous": old_kernels, "current": row.get("kernels")}
        if old.get("kcycles_per_sec"):
            out["kcycles_speedup"][key] = round(
                row["kcycles_per_sec"] / old["kcycles_per_sec"], 3)
        if old.get("energy_per_instruction"):
            out["epi_ratio"][key] = round(
                row["energy_per_instruction"]
                / old["energy_per_instruction"], 4)
    return out


def measure_surrogate(workloads: Sequence[str], max_instructions: int,
                      jobs: int, *, quick: bool = False,
                      progress=None) -> Dict[str, object]:
    """Score the analytical surrogate against simulation on the grid.

    Embeds the full :func:`repro.harness.surrogate.validation_report`
    (per-cell predicted vs simulated IPC and the error-bound verdict) so
    the surrogate's accuracy contract is tracked PR over PR; CI asserts
    ``within_bound`` on the quick artifact.
    """
    from repro.harness.surrogate import default_grid, validation_report
    grid = default_grid()
    if quick:
        grid = grid[:4]
    if progress is not None:
        progress(f"surrogate: {len(workloads) * len(grid)} cells validation")
    start = time.perf_counter()
    report = validation_report(list(workloads), grid,
                               max_instructions=max_instructions, jobs=jobs)
    report["seconds"] = round(time.perf_counter() - start, 3)
    return report


#: Pipeline-stage -> profiled call sites, matched as (path suffix,
#: function name) against pstats entries.  Times are *inclusive*
#: (cumulative): ``dispatch`` contains the IQ admission it calls into,
#: and ``iq_engine`` counts the IQ entry points wherever they were
#: entered from — the buckets answer "how much of the run passes
#: through this stage", Amdahl's question, and deliberately overlap.
_PROFILE_STAGES: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "dispatch": (("pipeline/processor.py", "_dispatch"),),
    "fetch": (("frontend/fetch.py", "cycle"),),
    "issue": (("pipeline/processor.py", "_issue"),),
    "commit": (("pipeline/processor.py", "_commit"),),
    "iq_engine": (("core/segmented/queue.py", "cycle"),
                  ("core/segmented/queue.py", "select_issue"),
                  ("core/segmented/queue.py", "dispatch"),
                  ("core/segmented/queue.py", "can_dispatch"),
                  ("core/segmented/queue.py", "next_event_cycle"),
                  ("core/segmented/queue.py", "skip_cycles")),
}


def _profile_stats(workload: str, config: str, max_instructions: int):
    """cProfile one serial cell; returns the raw ``pstats.Stats``."""
    import cProfile
    import pstats

    factory = dict(SERIAL_CONFIGS).get(config)
    if factory is None:
        known = ", ".join(label for label, _ in SERIAL_CONFIGS)
        raise ValueError(f"unknown serial config {config!r}; known: {known}")
    params = factory()
    profiler = cProfile.Profile()
    profiler.enable()
    api.run(params, workload, config_label=config,
            max_instructions=max_instructions)
    profiler.disable()
    return pstats.Stats(profiler)


def _stage_breakdown(stats) -> Tuple[Dict[str, Dict[str, float]], float]:
    """Per-stage inclusive seconds/fractions from a ``pstats.Stats``."""
    total = stats.total_tt
    stages: Dict[str, Dict[str, float]] = {}
    for stage, sites in _PROFILE_STAGES.items():
        seconds = 0.0
        for (path, _line, func), entry in stats.stats.items():
            normalized = path.replace("\\", "/")
            for suffix, name in sites:
                if func == name and normalized.endswith(suffix):
                    seconds += entry[3]          # ct: cumulative seconds
                    break
        stages[stage] = {
            "seconds": round(seconds, 4),
            "fraction": round(seconds / total, 4) if total else 0.0,
        }
    return stages, total


def measure_profile(workload: str = "gcc",
                    config: str = "seg-512-128ch",
                    max_instructions: int = 20_000,
                    progress=None) -> Dict[str, object]:
    """Profile one serial cell and return the per-stage Amdahl split.

    One cProfiled run of the dense segmented design point, reduced to
    the five pipeline stages of :data:`_PROFILE_STAGES`.  Embedded in
    the artifact (schema 8) so stage shares are diffable PR over PR;
    profiler overhead inflates the absolute seconds, which is why the
    *fractions* are the tracked quantity.
    """
    from repro.core.segmented.kernels import backend as kernel_backend
    if progress is not None:
        progress(f"profile {workload}/{config}")
    stats = _profile_stats(workload, config, max_instructions)
    stages, total = _stage_breakdown(stats)
    return {
        "workload": workload,
        "config": config,
        "max_instructions": max_instructions,
        "kernels": kernel_backend(),
        "total_seconds": round(total, 4),
        "stages": stages,
    }


def profile_serial_cell(workload: str = "gcc",
                        config: str = "seg-512-128ch",
                        max_instructions: int = 20_000) -> str:
    """cProfile one serial cell; return the stage split plus the
    top-20 cumulative report."""
    import io

    stats = _profile_stats(workload, config, max_instructions)
    stages, total = _stage_breakdown(stats)
    buffer = io.StringIO()
    buffer.write(f"profile: {workload}/{config} "
                 f"({max_instructions} instructions)\n")
    buffer.write(f"stage split (inclusive of {total:.3f}s total):\n")
    for stage, row in sorted(stages.items(),
                             key=lambda item: -item[1]["seconds"]):
        buffer.write(f"  {stage:<10} {row['seconds']:8.4f}s "
                     f"{100 * row['fraction']:5.1f}%\n")
    stats.stream = buffer
    stats.sort_stats("cumulative").print_stats(20)
    return buffer.getvalue()


def run_bench(*, jobs: Optional[int] = None, quick: bool = False,
              workloads: Optional[Sequence[str]] = None,
              max_instructions: Optional[int] = None,
              out_dir: str = ".",
              compare: Optional[str] = None,
              backend: str = "local-process",
              progress=None) -> Tuple[Path, dict]:
    """Run the full benchmark and write ``BENCH_<date>.json``.

    Returns (artifact path, data).  ``quick`` shrinks the grid and the
    instruction budgets for CI smoke runs; ``workloads`` /
    ``max_instructions`` override the defaults for targeted runs.
    """
    from repro.fabric import default_jobs
    jobs = default_jobs() if jobs is None else max(1, jobs)
    serial_configs = QUICK_SERIAL if quick else SERIAL_CONFIGS
    sweep_configs = QUICK_SWEEP_CONFIGS if quick else SWEEP_CONFIGS
    sweep_workloads = list(workloads) if workloads else (
        QUICK_SWEEP_WORKLOADS if quick else SWEEP_WORKLOADS)
    serial_workloads = sweep_workloads[:2] if quick else sweep_workloads
    budget = max_instructions if max_instructions is not None else (
        4_000 if quick else 20_000)

    serial = measure_serial(serial_workloads, serial_configs, budget,
                            progress=progress)
    sweep = measure_sweep(sweep_workloads, sweep_configs, budget, jobs,
                          backend=backend, progress=progress)
    fabric = measure_fabric(jobs, progress=progress)
    sampling = measure_sampling(quick=quick, progress=progress)
    metrics = measure_metrics(serial_workloads[0], budget,
                              progress=progress)
    surrogate = measure_surrogate(serial_workloads, budget, jobs,
                                  quick=quick, progress=progress)
    profile = measure_profile(serial_workloads[0],
                              max_instructions=budget, progress=progress)

    machine = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "calibration_seconds": measure_calibration(),
    }
    data = {
        "schema": SCHEMA_VERSION,
        "date": datetime.datetime.now().isoformat(timespec="seconds"),
        "quick": quick,
        "machine": machine,
        "serial": serial,
        "serial_geomean": {
            "kcycles_per_sec": round(_geomean(
                [row["kcycles_per_sec"] for row in serial.values()]), 2),
            "kinsts_per_sec": round(_geomean(
                [row["kinsts_per_sec"] for row in serial.values()]), 2),
        },
        "sweep": sweep,
        "fabric": fabric,
        "sampling": sampling,
        "metrics": metrics,
        "surrogate": surrogate,
        "profile": profile,
    }
    if compare:
        diff = compare_with(compare, serial,
                            calibration=machine["calibration_seconds"])
        data["compare"] = {"previous": compare, **diff}

    stamp = datetime.date.today().strftime("%Y%m%d")
    path = Path(out_dir) / f"BENCH_{stamp}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path, data


def render_summary(data: dict) -> str:
    """Terse human-readable digest of one bench run."""
    sweep = data["sweep"]
    lines = [
        f"bench {data['date']}  (python {data['machine']['python']}, "
        f"{data['machine']['cpu_count']} cpu)",
        f"  serial throughput (geomean): "
        f"{data['serial_geomean']['kcycles_per_sec']} kcycles/s, "
        f"{data['serial_geomean']['kinsts_per_sec']} kinsts/s",
    ]
    ratios = [row["skip_ratio"] for row in data["serial"].values()
              if "skip_ratio" in row]
    if ratios:
        lines.append(f"  skip-ahead: {100 * sum(ratios) / len(ratios):.1f}% "
                     f"of cycles fast-forwarded (mean over serial cells)")
    lines += [
        f"  sweep {sweep['cells']} cells "
        f"[{sweep.get('backend', 'local-process')}]: "
        f"serial {sweep['serial_seconds']}s, "
        f"jobs={sweep['jobs']} {sweep['parallel_seconds']}s "
        f"({sweep['parallel_speedup']}x), "
        f"cached {sweep['cached_seconds']}s "
        f"({100 * sweep['cached_fraction_of_cold']:.1f}% of cold)",
    ]
    fabric = data.get("fabric")
    if fabric:
        parts = []
        for name, row in fabric["backends"].items():
            if "skipped" in row:
                parts.append(f"{name} skipped")
            else:
                extra = (f", {row['speedup_vs_local_process']}x"
                         if "speedup_vs_local_process" in row else "")
                piped = (f" ({row['pipelined_seconds_per_cell']}s piped)"
                         if "pipelined_seconds_per_cell" in row else "")
                parts.append(f"{name} {row['seconds_per_cell']}s/cell"
                             f"{piped}{extra}")
        lines.append(f"  fabric {fabric['cells']} tiny cells "
                     f"(serial submits, warm workers): " + ", ".join(parts))
    sampling = data.get("sampling")
    if sampling:
        lines.append(
            f"  sampling {sampling['workload']}: "
            f"{sampling['sampled_seconds']}s vs full "
            f"{sampling['full_seconds']}s "
            f"({sampling['wall_speedup']}x wall, "
            f"{sampling['detail_cycle_ratio']}x fewer detailed cycles)")
    profile = data.get("profile")
    if profile:
        split = ", ".join(
            f"{stage} {100 * row['fraction']:.0f}%"
            for stage, row in sorted(
                profile["stages"].items(),
                key=lambda item: -item[1]["fraction"]))
        lines.append(
            f"  profile {profile['workload']}/{profile['config']} "
            f"[{profile.get('kernels', '?')}]: {split} (inclusive)")
    surrogate = data.get("surrogate")
    if surrogate:
        verdict = "PASS" if surrogate.get("within_bound") else "FAIL"
        lines.append(
            f"  surrogate: mean |error| "
            f"{100 * surrogate['mean_abs_rel_error']:.1f}% over "
            f"{surrogate['scored_cells']} cells "
            f"(bound {100 * surrogate['error_bound']:.0f}%) {verdict}")
    metrics = data.get("metrics")
    if metrics:
        means = metrics.get("series_means", {})
        lines.append(
            f"  metrics {metrics['workload']}: "
            f"ipc {means.get('ipc', 0.0)}, "
            f"issue util {means.get('issue.utilization', 0.0)}, "
            f"tracing overhead {100 * metrics['tracing_overhead']:+.1f}% "
            f"({metrics['events_emitted']} events)")
    if "compare" in data:
        compare = data["compare"]
        missing = compare.get("missing_sections")
        if missing:
            lines.append(
                f"  vs {compare['previous']}: no diff — artifact "
                f"(schema {compare.get('previous_schema')}) is missing "
                f"section(s): {', '.join(missing)}")
        mismatched = compare.get("kernels_mismatch", {})
        if mismatched:
            example = next(iter(mismatched.values()))
            lines.append(
                f"  WARNING: {len(mismatched)} row(s) compare different "
                f"kernel backends ({example['previous']} -> "
                f"{example['current']}); the speedup below measures the "
                f"backend, not this change")
        speedups = compare["kcycles_speedup"]
        if speedups:
            mean = _geomean(list(speedups.values()))
            lines.append(f"  vs {compare['previous']}: "
                         f"{mean:.2f}x kcycles/s (geomean)")
            host = compare.get("host_speed_ratio")
            if host:
                lines.append(
                    f"  host calibration: {host:.2f}x vs previous "
                    f"artifact (code-only speedup ~{mean / host:.2f}x)")
        epi = compare.get("epi_ratio", {})
        if epi:
            mean = _geomean(list(epi.values()))
            lines.append(f"  energy/instruction vs previous: "
                         f"{mean:.3f}x (geomean)")
    return "\n".join(lines)
