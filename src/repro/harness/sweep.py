"""Generic parameter-grid sweeps with tabular/CSV output.

A :class:`Sweep` crosses workloads with named configurations, runs every
cell once, and renders the grid — the shape behind Figure 3 and most of
the ablations, packaged for users exploring their own design points::

    from repro.harness import configs
    from repro.harness.sweep import Sweep

    sweep = Sweep(workloads=["swim", "twolf"])
    for size in (32, 128, 512):
        sweep.add_config(f"ideal-{size}", configs.ideal(size))
        sweep.add_config(f"seg-{size}", configs.segmented(size, 128, "comb"))
    grid = sweep.run()
    print(grid.render())
    grid.write_csv("sweep.csv")
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.params import ProcessorParams
from repro.fabric.base import UNSET, merge_legacy_kwargs
from repro.harness.reporting import format_table
from repro.harness.runner import RunResult
from repro.workloads import WORKLOADS


@dataclass
class SweepGrid:
    """Results of a sweep: results[workload][config_label].

    ``models`` maps each config label to its IQ model kind; rendered and
    CSV headers carry the kind (``"seg-128 [segmented]"``) so grids that
    mix several IQ designs stay unambiguous.  ``surrogate_cells`` lists
    the (workload, label) cells whose results came from the analytical
    surrogate rather than simulation (see
    :mod:`repro.harness.surrogate`); they are rendered with a ``~``
    prefix.
    """

    workloads: List[str]
    config_labels: List[str]
    results: Dict[str, Dict[str, RunResult]]
    metric: str = "ipc"
    models: Dict[str, str] = field(default_factory=dict)
    surrogate_cells: set = field(default_factory=set)

    def column_key(self, label: str) -> str:
        """The config label, annotated with its IQ model kind."""
        kind = self.models.get(label)
        return f"{label} [{kind}]" if kind else label

    def value(self, workload: str, label: str) -> float:
        result = self.results[workload][label]
        if self.metric == "ipc":
            return result.ipc
        if self.metric == "cycles":
            return float(result.cycles)
        try:
            return result.stats[self.metric]
        except KeyError:
            available = ["ipc", "cycles"] + sorted(result.stats)
            raise KeyError(
                f"unknown metric {self.metric!r}; available metrics: "
                f"{', '.join(available)}") from None

    def _cell(self, workload: str, label: str):
        value = round(self.value(workload, label), 3)
        if (workload, label) in self.surrogate_cells:
            return f"~{value}"
        return value

    def render(self, metric: Optional[str] = None) -> str:
        metric = metric or self.metric
        saved, self.metric = self.metric, metric
        try:
            rows = [[workload] + [self._cell(workload, label)
                                  for label in self.config_labels]
                    for workload in self.workloads]
        finally:
            self.metric = saved
        headers = ["benchmark"] + [self.column_key(label)
                                   for label in self.config_labels]
        title = f"sweep: {metric}"
        if self.surrogate_cells:
            title += "  (~ = surrogate prediction, not simulated)"
        return format_table(headers, rows, title=title)

    def write_csv(self, path: str, metric: Optional[str] = None) -> None:
        metric = metric or self.metric
        saved, self.metric = self.metric, metric
        try:
            with open(path, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["benchmark"]
                                + [self.column_key(label)
                                   for label in self.config_labels])
                for workload in self.workloads:
                    writer.writerow(
                        [workload] + [self.value(workload, label)
                                      for label in self.config_labels])
        finally:
            self.metric = saved

    def best_config(self, workload: str) -> str:
        return max(self.config_labels,
                   key=lambda label: self.value(workload, label))


class Sweep:
    """Builds and executes a workload x configuration grid."""

    def __init__(self, workloads: Sequence[str],
                 max_instructions: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None) -> None:
        unknown = set(workloads) - set(WORKLOADS)
        if unknown:
            raise KeyError(f"unknown workloads: {sorted(unknown)}")
        self.workloads = list(workloads)
        self.max_instructions = max_instructions
        self.progress = progress
        self._configs: List[tuple] = []

    def add_config(self, label: str, params: ProcessorParams) -> "Sweep":
        if any(existing == label for existing, _ in self._configs):
            raise ValueError(f"duplicate config label {label!r}")
        params.validate()
        self._configs.append((label, params))
        return self

    def run(self, metric: str = "ipc", *, execution=None,
            jobs=UNSET, cache=UNSET, sampling=None, sampling_scale: int = 1,
            metrics=None, surrogate: bool = False) -> SweepGrid:
        """Run every (workload, config) cell and collect the grid.

        ``execution`` is an optional
        :class:`~repro.fabric.ExecutionConfig` selecting the execution
        backend (``local-process``, ``local-shm``, ``ssh:host,...``),
        worker count, result cache, and (optionally) a resumable sweep
        journal.  The default runs serially on ``local-process``.

        ``jobs=``/``cache=`` are the deprecated spelling of the same
        thing (one release of grace, mirroring the ``run_workload``
        path): ``jobs`` > 1 fans the cells out over the backend (cells
        are independent; results are deterministic and ordered either
        way), ``cache`` is an optional
        :class:`~repro.harness.cache.ResultCache`; cached cells skip
        simulation entirely.

        ``sampling`` is an optional
        :class:`~repro.sampling.SamplingConfig`: when given, every cell
        runs as a sampled simulation (checkpoint + interval windows)
        instead of full detail, and the grid's IPC values are sampled
        estimates carrying ``sampling.*`` stats (CI bounds, detail
        fraction).  ``sampling_scale`` scales the workloads up so the
        stream is long enough to sample; the on-disk ``cache`` is not
        consulted for sampled cells (estimates are not exchangeable with
        full-detail results).

        ``metrics`` is an optional :class:`~repro.obs.MetricsConfig` (or
        interval int) applied to every full-detail cell: each
        ``RunResult.metrics`` then carries the windowed time series.
        Metered cells always simulate (the cache is not consulted).

        ``surrogate=True`` runs the analytical surrogate as a pruning
        pre-pass (see :mod:`repro.harness.surrogate`): one anchor cell
        per (workload, IQ kind) is simulated, cells outside the error
        band of the per-workload Pareto front are filled with predicted
        results (``stats["surrogate.predicted"]``, listed in
        ``SweepGrid.surrogate_cells``), and only the competitive
        remainder is simulated in full detail.
        """
        if not self._configs:
            raise ValueError("no configurations added")
        execution = merge_legacy_kwargs(execution, where="Sweep.run",
                                        jobs=jobs, cache=cache)
        if metrics is not None and sampling is not None:
            from repro.common.errors import ConfigurationError
            raise ConfigurationError(
                "metrics= requires full-detail cells; drop sampling= or "
                "collect metrics from a separate full run")
        models = {label: params.iq.kind for label, params in self._configs}
        if surrogate:
            if sampling is not None or metrics is not None:
                from repro.common.errors import ConfigurationError
                raise ConfigurationError(
                    "surrogate pruning requires plain full-detail cells; "
                    "drop sampling=/metrics= or run without surrogate=")
            from repro.harness.surrogate import prune_and_run
            cells = [(workload, label, params)
                     for workload in self.workloads
                     for label, params in self._configs]
            outcome = prune_and_run(cells,
                                    max_instructions=self.max_instructions,
                                    execution=execution,
                                    progress=self.progress)
            results = {workload: {} for workload in self.workloads}
            for (workload, label), result in outcome.results.items():
                results[workload][label] = result
            return SweepGrid(self.workloads,
                             [label for label, _ in self._configs],
                             results, metric, models=models,
                             surrogate_cells=set(outcome.pruned))
        import dataclasses as _dataclasses

        from repro.fabric import Executor, raise_on_errors
        executor = Executor(_dataclasses.replace(
            execution, jobs=execution.resolve_jobs(1)))
        if sampling is not None:
            from repro.sampling.sampler import (SampledRunSpec,
                                                run_sampled_cell)
            sampled_specs = [
                SampledRunSpec(workload, params, config_label=label,
                               sampling=sampling, scale=sampling_scale,
                               max_instructions=self.max_instructions)
                for workload in self.workloads
                for label, params in self._configs]
            if self.progress is not None:
                for spec in sampled_specs:
                    self.progress(
                        f"{spec.workload}/{spec.config_label} (sampled)")
            cells = executor.map(
                run_sampled_cell, sampled_specs,
                labels=[f"{s.workload}/{s.config_label}"
                        for s in sampled_specs])
            raise_on_errors(cells, "sampled sweep")
            specs = sampled_specs
        else:
            from repro.fabric import RunSpec
            specs = [RunSpec(workload, params, config_label=label,
                             max_instructions=self.max_instructions,
                             metrics=metrics)
                     for workload in self.workloads
                     for label, params in self._configs]
            if self.progress is not None:
                for spec in specs:
                    self.progress(f"{spec.workload}/{spec.config_label}")
            cells = executor.run_specs(specs)
            raise_on_errors(cells, "sweep")
        results: Dict[str, Dict[str, RunResult]] = {
            workload: {} for workload in self.workloads}
        for spec, cell in zip(specs, cells):
            results[spec.workload][spec.config_label] = cell
        return SweepGrid(self.workloads,
                         [label for label, _ in self._configs],
                         results, metric, models=models)
