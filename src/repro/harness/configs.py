"""Named processor configurations used throughout the evaluation.

These correspond to the configurations of the paper's figures:

* ``ideal(size)``                 — monolithic single-cycle IQ (the top line)
* ``segmented(size, chains, v)``  — segmented IQ; variant ``v`` is one of
  ``base`` (no predictors), ``hmp``, ``lrp``, or ``comb`` (both), matching
  the four bars per group in Figure 2
* ``prescheduled(lines)``         — Michaud-Seznec prescheduler
* ``fifo(size)``                  — Palacharla dependence FIFOs (extension)
"""

from __future__ import annotations

from typing import Optional

from repro.common.params import (IQParams, ProcessorParams,
                                 delay_tracking_iq_params, ideal_iq_params,
                                 prescheduled_iq_params, segmented_iq_params)

#: Figure 2 variant names, in the paper's bar order.
VARIANTS = ("base", "hmp", "lrp", "comb")


def ideal(size: int) -> ProcessorParams:
    return ProcessorParams().replace(iq=ideal_iq_params(size))


def segmented(size: int, max_chains: Optional[int] = 128,
              variant: str = "comb", *, segment_size: int = 32,
              pushdown: bool = True, bypass: bool = True) -> ProcessorParams:
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
    hmp = variant in ("hmp", "comb")
    lrp = variant in ("lrp", "comb")
    iq = segmented_iq_params(size, segment_size, max_chains,
                             hmp=hmp, lrp=lrp, pushdown=pushdown,
                             bypass=bypass)
    return ProcessorParams().replace(iq=iq)


def prescheduled(lines: int) -> ProcessorParams:
    return ProcessorParams().replace(iq=prescheduled_iq_params(lines))


def distance(lines: int, *, issue_buffer: int = 32,
             line_width: int = 12) -> ProcessorParams:
    """Canal-Gonzalez distance scheme with ``lines`` array lines."""
    return ProcessorParams().replace(
        iq=IQParams(kind="distance",
                    size=issue_buffer + lines * line_width,
                    presched_issue_buffer=issue_buffer,
                    presched_line_width=line_width))


def delay_tracking(size: int, *,
                   predicted_load_latency: int = 4) -> ProcessorParams:
    """Diavastos-Carlson load-delay-tracking IQ of ``size`` entries."""
    return ProcessorParams().replace(
        iq=delay_tracking_iq_params(
            size, predicted_load_latency=predicted_load_latency))


def fifo(size: int, depth: int = 32) -> ProcessorParams:
    return ProcessorParams().replace(
        iq=IQParams(kind="fifo", size=size, segment_size=depth))


def chain_label(max_chains: Optional[int]) -> str:
    return "unlimited" if max_chains is None else f"{max_chains} chains"
