"""Programmatic definitions of the paper's experiments.

Each experiment knows which (workload, configuration) grid it needs, how
to render its report, and how to serialize its raw data.  The pytest
benches and the ``python -m repro reproduce`` CLI both drive these, so a
user can regenerate any table or figure from a script::

    from repro.harness.experiments import EXPERIMENTS

    report, data = EXPERIMENTS["table2"].run(workloads=["swim", "twolf"])
    print(report)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness import configs
from repro.harness.reporting import (ascii_series_plot, figure2_report,
                                     format_table, table2_report)
from repro.harness.runner import RunResult
from repro.workloads import WORKLOADS

VARIANTS = ("base", "hmp", "lrp", "comb")
CHAIN_SETTINGS = ((None, "unlimited"), (128, "128 chains"),
                  (64, "64 chains"))
FIG3_SIZES = (32, 64, 128, 256, 512)
PRESCHED_LINES = (8, 24, 56, 120)


class ExperimentRunner:
    """Caches simulation runs across one experiment invocation.

    With ``jobs`` > 1 the experiment's whole grid is discovered up front
    (see :meth:`prefetch`) and fanned out over a process pool; ``cache``
    threads an on-disk :class:`~repro.harness.cache.ResultCache` through
    every cell so repeated invocations skip simulation entirely.
    """

    def __init__(self, workloads: Sequence[str],
                 budget_factor: float = 1.0,
                 progress: Optional[Callable[[str], None]] = None, *,
                 execution=None,
                 jobs: int = 1, cache=None,
                 sampling=None, sampling_scale: int = 1,
                 metrics=None, surrogate: bool = False) -> None:
        unknown = set(workloads) - set(WORKLOADS)
        if unknown:
            raise KeyError(f"unknown workloads: {sorted(unknown)}")
        self.workloads = list(workloads)
        self.budget_factor = budget_factor
        self.progress = progress
        if execution is None:
            from repro.fabric import ExecutionConfig
            execution = ExecutionConfig(jobs=jobs, cache=cache)
        #: The fabric placement for this experiment's cells (backend,
        #: worker count, cache); ``jobs``/``cache`` mirror it for
        #: callers that still read the old attributes.
        self.execution = execution
        self.jobs = execution.resolve_jobs(jobs)
        self.cache = execution.cache if execution.cache is not None \
            else cache
        #: Optional SamplingConfig: estimate every cell by interval
        #: sampling (at ``sampling_scale``x the workload size) instead of
        #: simulating it in full detail.
        self.sampling = sampling
        self.sampling_scale = sampling_scale
        #: Optional :class:`repro.obs.MetricsConfig` (or interval int)
        #: applied to every full-detail cell; every RunResult then
        #: carries its windowed time series (and skips the cache).
        self.metrics = metrics
        #: With ``surrogate`` the prefetch fan-out runs the analytical
        #: surrogate as a pruning pre-pass (repro.harness.surrogate):
        #: cells far from the per-workload Pareto front are filled with
        #: predicted results marked ``stats["surrogate.predicted"]``.
        self.surrogate = surrogate
        self._cache: Dict[Tuple[str, str], RunResult] = {}
        self._recording: Optional[List[Tuple[str, str, Callable]]] = None

    def _budget(self, workload: str) -> int:
        spec = WORKLOADS[workload]
        scale = self.sampling_scale if self.sampling is not None else 1
        return max(2_000, int(spec.default_instructions
                              * self.budget_factor * scale))

    def _sampled_spec(self, workload: str, config_key: str, params):
        from repro.sampling.sampler import SampledRunSpec
        return SampledRunSpec(workload, params, config_label=config_key,
                              sampling=self.sampling,
                              scale=self.sampling_scale,
                              max_instructions=self._budget(workload))

    def run(self, workload: str, config_key: str,
            params_factory) -> RunResult:
        key = (workload, config_key)
        if key in self._cache:
            return self._cache[key]
        if self._recording is not None:
            # Planning pass: record the cell, hand back a placeholder.
            self._recording.append((workload, config_key, params_factory))
            return RunResult(workload=workload, config=config_key,
                             ipc=0.0, cycles=0, instructions=0)
        if self.progress is not None:
            self.progress(f"{workload}/{config_key}")
        from repro.fabric import (ExecutionConfig, Executor, RunSpec,
                                  raise_on_errors)
        executor = Executor(ExecutionConfig(backend=self.execution.backend,
                                            jobs=1, cache=self.cache,
                                            options=self.execution.options))
        if self.sampling is not None:
            from repro.sampling.sampler import run_sampled_cell
            spec = self._sampled_spec(workload, config_key, params_factory())
            cells = executor.map(
                run_sampled_cell, [spec], labels=[f"{workload}/{config_key}"])
        else:
            spec = RunSpec(workload, params_factory(),
                           config_label=config_key,
                           max_instructions=self._budget(workload),
                           metrics=self.metrics)
            cells = executor.run_specs([spec])
        raise_on_errors(cells, "experiment")
        self._cache[key] = cells[0]
        return cells[0]

    def prefetch(self, build: Callable[["ExperimentRunner"], object]) -> None:
        """Discover the grid ``build`` will request, then run it in bulk.

        The builder runs once against placeholder results purely to record
        which cells it asks for (builders only combine results
        arithmetically, with zero-guarded divisions, so placeholders are
        safe); the recorded cells then run through one parallel,
        cache-aware fan-out.  If the dry run raises, fall back silently to
        the ordinary lazy-serial path.
        """
        self._recording = []
        try:
            build(self)
        except Exception:
            self._recording = None
            return
        plan, self._recording = self._recording, None
        seen = set()
        unique = []
        for workload, config_key, factory in plan:
            if (workload, config_key) not in seen:
                seen.add((workload, config_key))
                unique.append((workload, config_key, factory))
        import dataclasses as _dataclasses

        from repro.fabric import Executor, RunSpec, raise_on_errors
        executor = Executor(_dataclasses.replace(
            self.execution, jobs=self.jobs, cache=self.cache))
        if self.progress is not None:
            for workload, config_key, _ in unique:
                self.progress(f"{workload}/{config_key}")
        if self.sampling is not None:
            from repro.sampling.sampler import run_sampled_cell
            sampled = [self._sampled_spec(workload, config_key, factory())
                       for workload, config_key, factory in unique]
            cells = executor.map(
                run_sampled_cell, sampled,
                labels=[f"{s.workload}/{s.config_label}" for s in sampled])
        elif self.surrogate:
            from repro.harness.surrogate import prune_and_run
            grid = [(workload, config_key, factory())
                    for workload, config_key, factory in unique]
            budgets = {workload: self._budget(workload)
                       for workload, _key, _factory in unique}
            outcome = prune_and_run(grid, budgets=budgets,
                                    execution=executor.execution,
                                    progress=self.progress)
            for workload, config_key, _factory in unique:
                self._cache[(workload, config_key)] = \
                    outcome.results[(workload, config_key)]
            return
        else:
            specs = [RunSpec(workload, factory(), config_label=config_key,
                             max_instructions=self._budget(workload),
                             metrics=self.metrics)
                     for workload, config_key, factory in unique]
            cells = executor.run_specs(specs)
        raise_on_errors(cells, "experiment")
        for (workload, config_key, _), cell in zip(unique, cells):
            self._cache[(workload, config_key)] = cell

    def ideal(self, workload: str, size: int) -> RunResult:
        return self.run(workload, f"ideal-{size}",
                        lambda: configs.ideal(size))

    def segmented(self, workload: str, size: int, chains,
                  variant: str) -> RunResult:
        chain_key = "unl" if chains is None else str(chains)
        return self.run(workload, f"seg-{size}-{chain_key}-{variant}",
                        lambda: configs.segmented(size, chains, variant))

    def prescheduled(self, workload: str, lines: int) -> RunResult:
        return self.run(workload, f"presched-{lines}",
                        lambda: configs.prescheduled(lines))


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    name: str
    title: str
    build: Callable[[ExperimentRunner], Tuple[str, dict]]

    def run(self, workloads: Optional[Sequence[str]] = None,
            budget_factor: float = 1.0,
            progress: Optional[Callable[[str], None]] = None, *,
            execution=None, jobs=None, cache=None,
            sampling=None, sampling_scale: int = 1,
            metrics=None, surrogate: bool = False) -> Tuple[str, dict]:
        """Returns (rendered report, raw data dict).

        ``execution`` is an optional
        :class:`~repro.fabric.ExecutionConfig` choosing the execution
        backend, worker count, and result cache for the experiment's
        grid.  ``jobs=``/``cache=`` are the deprecated spelling (one
        release of grace): ``jobs`` > 1 fans the grid out in parallel,
        ``cache`` reuses results across invocations (see
        :mod:`repro.harness.cache`).  ``sampling`` estimates every cell
        by interval sampling instead of full-detail simulation (see
        :mod:`repro.sampling`) — faster, with a small statistical error
        the sampled stats quantify.  ``metrics`` attaches a
        :class:`~repro.obs.MetricsConfig` to every full-detail cell.
        ``surrogate`` prunes the grid with the analytical surrogate
        (:mod:`repro.harness.surrogate`): non-competitive cells carry
        predicted results marked ``stats["surrogate.predicted"]``.
        """
        from repro.fabric.base import UNSET, merge_legacy_kwargs
        execution = merge_legacy_kwargs(
            execution, where="Experiment.run",
            jobs=UNSET if jobs is None else jobs,
            cache=UNSET if cache is None else cache)
        runner = ExperimentRunner(workloads or sorted(WORKLOADS),
                                  budget_factor, progress,
                                  execution=execution,
                                  sampling=sampling,
                                  sampling_scale=sampling_scale,
                                  metrics=metrics, surrogate=surrogate)
        if runner.jobs > 1 or sampling is not None or surrogate:
            runner.prefetch(self.build)
        return self.build(runner)


# ------------------------------------------------------------- builders --
def _build_table2(runner: ExperimentRunner) -> Tuple[str, dict]:
    results = {workload: {variant: runner.segmented(workload, 512, None,
                                                    variant)
                          for variant in VARIANTS}
               for workload in runner.workloads}
    data = {workload: {variant: {"avg": results[workload][variant].chains_avg,
                                 "peak": results[workload][variant].chains_peak}
                       for variant in VARIANTS}
            for workload in runner.workloads}
    return table2_report(results), data


def _build_figure2(runner: ExperimentRunner) -> Tuple[str, dict]:
    rel: dict = {}
    for workload in runner.workloads:
        ideal = runner.ideal(workload, 512)
        rel[workload] = {}
        for chains, label in CHAIN_SETTINGS:
            rel[workload][label] = {
                variant: (runner.segmented(workload, 512, chains,
                                           variant).ipc / ideal.ipc
                          if ideal.ipc else 0.0)
                for variant in VARIANTS}
    return figure2_report(rel), rel


def _build_figure3(runner: ExperimentRunner) -> Tuple[str, dict]:
    series: dict = {}
    for workload in runner.workloads:
        per = {"ideal": {}, "seg-128ch": {}, "seg-64ch": {}, "presched": {}}
        for size in FIG3_SIZES:
            per["ideal"][size] = runner.ideal(workload, size).ipc
            per["seg-128ch"][size] = runner.segmented(
                workload, size, 128, "comb").ipc
            per["seg-64ch"][size] = runner.segmented(
                workload, size, 64, "comb").ipc
        for lines in PRESCHED_LINES:
            per["presched"][32 + 12 * lines] = runner.prescheduled(
                workload, lines).ipc
        series[workload] = per
    blocks = [ascii_series_plot(series[w],
                                title=f"Figure 3 ({w}): IPC vs queue size")
              for w in sorted(series)]
    return "\n".join(blocks), series


def _build_headline(runner: ExperimentRunner) -> Tuple[str, dict]:
    rows = []
    data = {}
    for workload in runner.workloads:
        conv32 = runner.ideal(workload, 32)
        ideal512 = runner.ideal(workload, 512)
        seg = runner.segmented(workload, 512, 128, "comb")
        gain = seg.ipc / conv32.ipc if conv32.ipc else 0.0
        fraction = seg.ipc / ideal512.ipc if ideal512.ipc else 0.0
        data[workload] = {"gain_over_32": gain,
                          "fraction_of_ideal": fraction}
        rows.append([workload, round(conv32.ipc, 3), round(seg.ipc, 3),
                     f"{100 * (gain - 1):+.0f}%", f"{100 * fraction:.0f}%"])
    report = format_table(
        ["benchmark", "conv-32 IPC", "seg-512/128 IPC", "gain", "% ideal"],
        rows, title="Headline claims (abstract / section 1)")
    return report, data


EXPERIMENTS: Dict[str, Experiment] = {
    "table2": Experiment(
        "table2", "Table 2: chain usage (512 entries, unlimited chains)",
        _build_table2),
    "figure2": Experiment(
        "figure2", "Figure 2: relative performance at 512 entries",
        _build_figure2),
    "figure3": Experiment(
        "figure3", "Figure 3: IPC across IQ sizes", _build_figure3),
    "headline": Experiment(
        "headline", "Abstract headline claims", _build_headline),
}


def save_data(data: dict, path: str) -> None:
    """Serialize an experiment's raw data as JSON."""
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True, default=str)
