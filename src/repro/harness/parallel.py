"""Process-pool execution of independent simulation cells.

Every figure in the reproduction is a grid of *independent* simulations
(workload x configuration), so the run stack fans grids out over a
process pool.  Design constraints, in order:

* **Determinism** — results come back in spec order regardless of worker
  completion order, and a worker computes exactly what the serial path
  would (workers share no state; every cell rebuilds its program from the
  workload registry).
* **Spawn safety** — the worker entry points are module-level functions
  with picklable payloads, so the pool works under the ``spawn`` start
  method (macOS/Windows default) as well as ``fork``.
* **Graceful degradation** — ``jobs=1``, a payload that fails to pickle,
  or a pool that cannot start all fall back to in-process serial
  execution; a worker that raises (or dies) surfaces as a per-cell
  :class:`CellError`, never a hung sweep.

The executor also threads every cell through an optional
:class:`~repro.harness.cache.ResultCache`, so only cold cells reach the
pool and repeated sweeps cost one disk read per cell.

Besides the batch :meth:`ParallelExecutor.map`/:meth:`~ParallelExecutor.
run_specs` interface, the executor offers *async-friendly* submission:
:meth:`ParallelExecutor.submit` starts one task in its own worker process
and returns a :class:`CellHandle` that an event loop (the job service) can
poll without blocking, stream progress ticks from, and **cancel** — a
handle owns its process, so cancellation is a hard terminate rather than
a cooperative flag, which is what per-job timeouts and user aborts need.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.common.params import ProcessorParams
from repro.harness.cache import ResultCache
from repro.harness.runner import RunResult


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell: everything a worker needs to reproduce it."""

    workload: str
    params: ProcessorParams
    config_label: str = ""
    seed: int = 0                     # reserved for seeded workloads
    max_instructions: Optional[int] = None
    scale: int = 1
    max_cycles: int = 5_000_000
    warm_code: bool = True
    #: Optional :class:`repro.obs.MetricsConfig` (or interval int); a
    #: metered cell always simulates — the cache is never consulted,
    #: because the time series is part of the result.
    metrics: Optional[object] = None
    #: Trace-artifact destination for the async :meth:`ParallelExecutor.
    #: submit_spec` path (``.jsonl`` streams JSONL, else Chrome JSON).
    #: Like ``metrics``, a traced cell always simulates.
    trace_path: Optional[str] = None
    #: Heartbeat cadence (seconds) on the submit_spec path.
    progress_interval: float = 0.5

    def cache_kwargs(self) -> dict:
        return {"max_instructions": self.max_instructions,
                "scale": self.scale, "max_cycles": self.max_cycles,
                "warm_code": self.warm_code}


@dataclass
class CellError:
    """A cell whose worker raised; carries enough context to report it."""

    label: str
    error: str
    details: str = field(default="", repr=False)

    def __str__(self) -> str:
        return f"{self.label}: {self.error}"


CellResult = Union[RunResult, CellError]


def default_jobs() -> int:
    """Worker count when the caller does not specify one."""
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


# ------------------------------------------------------- worker functions --
def _execute_spec(spec: RunSpec) -> RunResult:
    # Imported lazily: this runs inside spawn-started workers, where the
    # cheapest import footprint wins.
    from repro import api
    return api.run(spec.params, spec.workload,
                   config_label=spec.config_label,
                   scale=spec.scale,
                   max_instructions=spec.max_instructions,
                   max_cycles=spec.max_cycles,
                   warm_code=spec.warm_code,
                   metrics=spec.metrics)


def _guarded_call(payload: Tuple[Callable, object, str]):
    """Run one task, converting any exception into a CellError record."""
    func, item, label = payload
    try:
        return func(item)
    except Exception as exc:            # noqa: BLE001 — surfaced per-cell
        return CellError(label=label,
                         error=f"{type(exc).__name__}: {exc}",
                         details=traceback.format_exc())


def _handle_worker(conn, func: Callable, item, label: str) -> None:
    """Entry point of a :class:`CellHandle` worker process.

    ``func(item, emit)`` runs with ``emit(dict)`` streaming progress
    payloads back over the pipe; the final message is ``("done", value)``
    or ``("error", CellError)``.
    """
    def emit(payload: dict) -> None:
        try:
            conn.send(("tick", payload))
        except (OSError, ValueError):
            pass                         # parent gone; keep computing

    try:
        conn.send(("done", func(item, emit)))
    except Exception as exc:            # noqa: BLE001 — surfaced per-cell
        try:
            conn.send(("error", CellError(
                label=label, error=f"{type(exc).__name__}: {exc}",
                details=traceback.format_exc())))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


def _run_spec_task(spec: RunSpec, emit: Callable[[dict], None]):
    """Execute one RunSpec with heartbeat forwarding (submit_spec path).

    ``spec.trace_path``, when set, lands the run's event stream in that
    file (JSONL for ``.jsonl`` paths, Chrome trace JSON otherwise) — the
    artifact side-channel the job service serves back to clients.
    """
    from repro import api

    def tick(t) -> None:
        emit({"cycle": t.cycle, "committed": t.committed,
              "elapsed_seconds": round(t.elapsed_seconds, 3),
              "kcycles_per_sec": round(t.kcycles_per_sec, 3)})

    return api.run(spec.params, spec.workload,
                   config_label=spec.config_label,
                   scale=spec.scale,
                   max_instructions=spec.max_instructions,
                   max_cycles=spec.max_cycles,
                   warm_code=spec.warm_code,
                   metrics=spec.metrics,
                   trace=spec.trace_path or None,
                   progress=tick,
                   progress_interval=spec.progress_interval)


class CellHandle:
    """One asynchronously submitted task: poll, stream ticks, cancel.

    The task runs in a dedicated worker process whose lifetime the
    handle owns.  ``poll()`` is non-blocking and drains the progress
    pipe; ``cancel()`` terminates the worker outright (the result
    becomes a ``CellError`` marked cancelled).  Designed to be driven
    from an event loop — nothing here blocks beyond a bounded ``join``.
    """

    def __init__(self, label: str, process, conn) -> None:
        self.label = label
        self._process = process
        self._conn = conn
        self._result = None
        self._finished = False
        self.cancelled = False
        #: Drained-but-unconsumed progress payloads (see :meth:`ticks`).
        self._ticks: List[dict] = []

    # ---------------------------------------------------------- polling --
    def _drain(self) -> None:
        if self._finished:
            return
        try:
            while self._conn.poll():
                kind, payload = self._conn.recv()
                if kind == "tick":
                    self._ticks.append(payload)
                else:                    # "done" | "error"
                    self._result = payload
                    self._finish()
                    return
        except (EOFError, OSError):
            # Pipe closed without a result: the worker died (or was
            # cancelled); classify below.
            if self._result is None and not self._process.is_alive():
                self._result = CellError(
                    label=self.label,
                    error="cancelled" if self.cancelled
                    else "worker process died without reporting a result")
                self._finish()

    def _finish(self) -> None:
        self._finished = True
        try:
            self._conn.close()
        except OSError:
            pass
        self._process.join(timeout=5.0)

    def poll(self) -> bool:
        """Non-blocking: True once a result (or failure) is available."""
        self._drain()
        if self._finished:
            return True
        if not self._process.is_alive():
            # Worker exited; one last drain catches a result racing the
            # exit, otherwise record the death.
            try:
                if self._conn.poll():
                    self._drain()
            except (EOFError, OSError):
                pass
            if not self._finished:
                self._result = CellError(
                    label=self.label,
                    error="cancelled" if self.cancelled
                    else "worker process died without reporting a result")
                self._finish()
        return self._finished

    def ticks(self) -> List[dict]:
        """Progress payloads accumulated since the last call (drained)."""
        self._drain()
        out, self._ticks = self._ticks, []
        return out

    def result(self, timeout: Optional[float] = None):
        """Block (up to ``timeout``) for the result; raises on timeout."""
        if not self._finished:
            self._process.join(timeout)
            if not self.poll():
                raise TimeoutError(f"{self.label}: still running")
        return self._result

    # ------------------------------------------------------ cancellation --
    def cancel(self) -> bool:
        """Terminate the worker; True if this call performed the kill."""
        if self._finished:
            return False
        self.cancelled = True
        self._process.terminate()
        self._process.join(timeout=2.0)
        if self._process.is_alive():     # stuck in uninterruptible state
            self._process.kill()
            self._process.join(timeout=2.0)
        self._result = CellError(label=self.label, error="cancelled")
        self._finish()
        return True

    def close(self) -> None:
        if not self._finished:
            self.cancel()


class ParallelExecutor:
    """Fans independent tasks out over a process pool.

    ``jobs`` is the worker count (``None`` = ``REPRO_JOBS`` or the CPU
    count; ``1`` = serial, in-process).  ``cache`` is an optional
    :class:`ResultCache` consulted before and populated after every
    :meth:`run_specs` cell.  ``start_method`` picks the multiprocessing
    start method (``None`` = platform default).
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 cache: Optional[ResultCache] = None,
                 start_method: Optional[str] = None,
                 progress: Optional[Callable[[int, int], None]] = None
                 ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cache = cache
        self.start_method = start_method
        #: Optional ``progress(done, total)`` heartbeat, invoked as each
        #: cell's result lands (serial and pooled paths alike).
        self.progress = progress
        #: True when the last map degraded to serial (pickling/pool
        #: failure); exposed so tests and the bench can report it.
        self.fell_back_to_serial = False

    # ------------------------------------------------------------- map --
    def map(self, func: Callable, items: Sequence,
            labels: Optional[Sequence[str]] = None) -> List:
        """Apply ``func`` to every item, preserving input order.

        ``func`` must be a module-level (picklable) callable.  Each output
        is either the task's return value or a :class:`CellError`.
        """
        self.fell_back_to_serial = False
        if labels is None:
            labels = [f"task[{index}]" for index in range(len(items))]
        payloads = [(func, item, label)
                    for item, label in zip(items, labels)]

        def serial() -> List:
            results = []
            for payload in payloads:
                results.append(_guarded_call(payload))
                if self.progress is not None:
                    self.progress(len(results), len(payloads))
            return results

        if self.jobs <= 1 or len(payloads) <= 1:
            return serial()
        try:
            pickle.dumps(payloads)
        except Exception:
            self.fell_back_to_serial = True
            return serial()
        workers = min(self.jobs, len(payloads))
        context = (multiprocessing.get_context(self.start_method)
                   if self.start_method else None)
        results: List = [None] * len(payloads)
        try:
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=context) as pool:
                futures = [pool.submit(_guarded_call, payload)
                           for payload in payloads]
                for index, future in enumerate(futures):
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        results[index] = CellError(
                            label=labels[index],
                            error="worker process died "
                                  "(BrokenProcessPool)")
                    except Exception as exc:   # noqa: BLE001
                        results[index] = CellError(
                            label=labels[index],
                            error=f"{type(exc).__name__}: {exc}")
                    if self.progress is not None:
                        self.progress(index + 1, len(payloads))
        except (OSError, BrokenProcessPool):
            # Pool could not start at all (fd limits, sandboxing):
            # degrade to serial rather than fail the sweep.
            self.fell_back_to_serial = True
            return serial()
        return results

    # ----------------------------------------------------- async submit --
    def submit(self, func: Callable, item, *,
               label: str = "task") -> CellHandle:
        """Start ``func(item, emit)`` in its own worker process.

        Returns a :class:`CellHandle` immediately; the caller polls or
        cancels it.  ``func`` must be module-level (picklable) and takes
        an ``emit(dict)`` second argument for progress streaming.  Unlike
        :meth:`map`, each submission owns a dedicated process — that
        costs a fork per task but makes cancellation a hard kill, the
        contract the job service's timeouts and aborts need.  ``jobs``
        is *not* enforced here; the scheduling layer bounds concurrency.
        """
        context = multiprocessing.get_context(self.start_method)
        parent, child = context.Pipe(duplex=False)
        process = context.Process(target=_handle_worker,
                                  args=(child, func, item, label),
                                  daemon=True)
        process.start()
        child.close()
        return CellHandle(label, process, parent)

    def submit_spec(self, spec: RunSpec) -> CellHandle:
        """Async-submit one simulation cell (no cache consult here —
        :meth:`run_specs` stays the cache-aware batch path; async callers
        dedupe against the cache themselves before paying for a fork)."""
        label = f"{spec.workload}/{spec.config_label or spec.params.iq.kind}"
        return self.submit(_run_spec_task, spec, label=label)

    # ------------------------------------------------------------ specs --
    def run_specs(self, specs: Sequence[RunSpec]) -> List[CellResult]:
        """Run simulation cells, cache-aware, in deterministic order."""
        results: List[Optional[CellResult]] = [None] * len(specs)
        cold: List[Tuple[int, RunSpec, Optional[str]]] = []
        for index, spec in enumerate(specs):
            key = None
            if self.cache is not None and spec.metrics is None:
                key = self.cache.key_for(spec.workload, spec.params,
                                         **spec.cache_kwargs())
                hit = self.cache.get(key)
                if hit is not None:
                    # Same simulation under a different display label still
                    # hits; restore the label the caller asked for.
                    if hit.config != spec.config_label and spec.config_label:
                        hit = RunResult(
                            workload=hit.workload, config=spec.config_label,
                            ipc=hit.ipc, cycles=hit.cycles,
                            instructions=hit.instructions, stats=hit.stats)
                    results[index] = hit
                    continue
            cold.append((index, spec, key))
        if cold:
            outputs = self.map(_execute_spec,
                               [spec for _, spec, _ in cold],
                               labels=[f"{spec.workload}/{spec.config_label}"
                                       for _, spec, _ in cold])
            for (index, _spec, key), output in zip(cold, outputs):
                results[index] = output
                if (self.cache is not None and key is not None
                        and isinstance(output, RunResult)):
                    self.cache.put(key, output)
        return results     # type: ignore[return-value]


def raise_on_errors(results: Sequence[CellResult], what: str) -> None:
    """Raise a RuntimeError summarizing any failed cells."""
    errors = [r for r in results if isinstance(r, CellError)]
    if not errors:
        return
    summary = "; ".join(str(e) for e in errors[:3])
    if len(errors) > 3:
        summary += f"; ... ({len(errors) - 3} more)"
    raise RuntimeError(f"{len(errors)} of {len(results)} {what} cells "
                       f"failed: {summary}")
