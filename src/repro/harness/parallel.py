"""Deprecated shim over :mod:`repro.fabric` (the execution layer's old home).

Everything that lived here — ``RunSpec``, ``CellError``, ``CellHandle``,
the pool machinery — moved to :mod:`repro.fabric` when execution became
a pluggable backend choice.  The names re-export unchanged, and
:class:`ParallelExecutor` keeps its old constructor signature as a thin
wrapper over the ``local-process`` backend, warning once per
construction.  New code should use::

    from repro.fabric import Executor, ExecutionConfig
    Executor(ExecutionConfig(backend="local-process", jobs=4, cache=cache))

This module is scheduled for removal one release after the fabric
landed; see ``docs/fabric.md`` for the migration table.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional

# Re-exported for compatibility: the entire old public surface.
from repro.fabric.base import ExecutionConfig
from repro.fabric.cells import (CellError, CellResult, RunSpec,  # noqa: F401
                                _execute_spec, _guarded_call,
                                _handle_worker, _run_spec_task,
                                default_jobs, raise_on_errors, relabel)
from repro.fabric.executor import Executor
from repro.fabric.handles import CellHandle, CompletedHandle  # noqa: F401

__all__ = [
    "CellError", "CellHandle", "CellResult", "ParallelExecutor",
    "RunSpec", "default_jobs", "raise_on_errors", "relabel",
]


class ParallelExecutor(Executor):
    """The old executor front door, now a ``local-process`` fabric shim.

    Same constructor, same ``map``/``run_specs``/``submit``/
    ``submit_spec`` behaviour (they are the fabric driver's methods),
    same degradation ladder.  Deprecated: construct
    :class:`repro.fabric.Executor` with an
    :class:`~repro.fabric.ExecutionConfig` instead.
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 cache=None,
                 start_method: Optional[str] = None,
                 progress: Optional[Callable[[int, int], None]] = None
                 ) -> None:
        warnings.warn(
            "repro.harness.parallel.ParallelExecutor is deprecated; use "
            "repro.fabric.Executor with an ExecutionConfig "
            "(see docs/fabric.md)",
            DeprecationWarning, stacklevel=2)
        options = {}
        if start_method is not None:
            options["start_method"] = start_method
        super().__init__(ExecutionConfig(backend="local-process",
                                         jobs=jobs, cache=cache,
                                         progress=progress,
                                         options=options))
