"""Experiment harness: configurations, the runner, and report rendering."""

from repro.fabric import CellError, RunSpec
from repro.harness import configs
from repro.harness.cache import ResultCache
from repro.harness.energy import (EnergyModel, energy_per_instruction,
                                  format_breakdown)
from repro.harness.parallel import ParallelExecutor  # deprecated shim
from repro.harness.experiments import EXPERIMENTS, Experiment
from repro.harness.trace import (render_pipeline_trace, segment_heatmap,
                                 stage_latency_summary)
from repro.harness.reporting import (ascii_series_plot, figure2_report,
                                     format_table, geometric_mean,
                                     relative_performance, table2_report)
from repro.harness.runner import RunResult, resolve_workload
from repro.harness.sweep import Sweep, SweepGrid

__all__ = [
    "CellError", "EXPERIMENTS", "EnergyModel", "Experiment",
    "ParallelExecutor", "ResultCache", "RunResult", "RunSpec",
    "ascii_series_plot", "configs", "energy_per_instruction",
    "figure2_report", "format_breakdown", "render_pipeline_trace",
    "segment_heatmap", "stage_latency_summary",
    "format_table", "geometric_mean", "relative_performance",
    "resolve_workload", "Sweep", "SweepGrid",
    "table2_report",
]
