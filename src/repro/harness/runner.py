"""Simulation runner: one (workload, configuration) -> one RunResult."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.common.params import ProcessorParams
from repro.isa.executor import execute
from repro.pipeline.processor import Processor
from repro.workloads.kernels import WORKLOADS, WorkloadSpec


@dataclass
class RunResult:
    """Everything a bench needs from one simulation."""

    workload: str
    config: str
    ipc: float
    cycles: int
    instructions: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def chains_avg(self) -> float:
        return self.stats.get("chains.in_use.mean", 0.0)

    @property
    def chains_peak(self) -> float:
        return self.stats.get("chains.in_use.peak", 0.0)

    @property
    def branch_accuracy(self) -> float:
        lookups = (self.stats.get("bpred.correct", 0)
                   + self.stats.get("bpred.mispredicts", 0))
        return self.stats.get("bpred.correct", 0) / lookups if lookups else 0.0

    def __str__(self) -> str:
        return (f"{self.workload}/{self.config}: IPC={self.ipc:.3f} "
                f"({self.instructions} insts, {self.cycles} cycles)")


def resolve_workload(workload: Union[str, WorkloadSpec]) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        return workload
    try:
        return WORKLOADS[workload]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {workload!r}; known: {known}")


def run_workload(workload: Union[str, WorkloadSpec],
                 params: ProcessorParams, *,
                 config_label: str = "",
                 scale: int = 1,
                 max_instructions: Optional[int] = None,
                 max_cycles: int = 5_000_000,
                 warm_code: bool = True,
                 progress=None,
                 progress_interval: float = 5.0) -> RunResult:
    """Simulate one benchmark analog under one configuration.

    Code is pre-warmed by default (the paper measures warm checkpoints);
    data is pre-warmed into the L2 when the workload spec asks for it.
    ``progress`` is an optional heartbeat callback receiving
    :class:`~repro.pipeline.processor.ProgressTick` records roughly every
    ``progress_interval`` seconds.
    """
    spec = resolve_workload(workload)
    program = spec.build(scale)
    budget = (max_instructions if max_instructions is not None
              else spec.default_instructions * scale)
    processor = Processor(params, execute(program, max_instructions=budget))
    if warm_code:
        processor.warm_code(program)
    if spec.warm_data:
        processor.warm_data(program)
    processor.run(max_cycles=max_cycles, progress=progress,
                  progress_interval=progress_interval)
    return RunResult(
        workload=spec.name,
        config=config_label or params.iq.kind,
        ipc=processor.ipc,
        cycles=processor.cycle,
        instructions=processor.committed,
        stats=processor.stats.as_dict())
