"""Simulation runner: one (workload, configuration) -> one RunResult.

.. deprecated::
    :func:`run_workload` is superseded by :func:`repro.api.run`, the
    single entry point that also threads tracing, metrics, sampling,
    and result caching.  The shim here survives one release.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.common.params import ProcessorParams
from repro.workloads.kernels import WORKLOADS, WorkloadSpec


@dataclass
class RunResult:
    """Everything a bench needs from one simulation."""

    workload: str
    config: str
    ipc: float
    cycles: int
    instructions: int
    stats: Dict[str, float] = field(default_factory=dict)
    #: Windowed time-series report from :class:`repro.obs.MetricsCollector`
    #: (``None`` unless the run was started with ``metrics=``).
    metrics: Optional[Dict] = None

    @property
    def chains_avg(self) -> float:
        return self.stats.get("chains.in_use.mean", 0.0)

    @property
    def chains_peak(self) -> float:
        return self.stats.get("chains.in_use.peak", 0.0)

    @property
    def branch_accuracy(self) -> float:
        lookups = (self.stats.get("bpred.correct", 0)
                   + self.stats.get("bpred.mispredicts", 0))
        return self.stats.get("bpred.correct", 0) / lookups if lookups else 0.0

    def __str__(self) -> str:
        return (f"{self.workload}/{self.config}: IPC={self.ipc:.3f} "
                f"({self.instructions} insts, {self.cycles} cycles)")


def resolve_workload(workload: Union[str, WorkloadSpec]) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        return workload
    try:
        return WORKLOADS[workload]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {workload!r}; known: {known}")


def run_workload(workload: Union[str, WorkloadSpec],
                 params: ProcessorParams, *,
                 config_label: str = "",
                 scale: int = 1,
                 max_instructions: Optional[int] = None,
                 max_cycles: int = 5_000_000,
                 warm_code: bool = True,
                 progress=None,
                 progress_interval: float = 5.0) -> RunResult:
    """Simulate one benchmark analog under one configuration.

    .. deprecated::
        Use :func:`repro.api.run` — same semantics (``api.run(params,
        workload, ...)``, note the argument order), plus ``trace=``,
        ``metrics=``, ``sampling=``, and ``cache=``.
    """
    warnings.warn(
        "run_workload is deprecated; use repro.api.run(params, workload, "
        "...) instead (it adds trace/metrics/sampling/cache support)",
        DeprecationWarning, stacklevel=2)
    from repro import api
    return api.run(params, workload,
                   config_label=config_label, scale=scale,
                   max_instructions=max_instructions, max_cycles=max_cycles,
                   warm_code=warm_code, progress=progress,
                   progress_interval=progress_interval)
