"""Run-result record and workload resolution.

All simulation goes through :func:`repro.api.run`, the single entry
point that also threads tracing, metrics, sampling, and result caching;
this module holds the :class:`RunResult` value it returns and the
workload-name resolver the harness shares.  (The deprecated
``run_workload`` shim that used to live here is gone — call
``api.run(params, workload, ...)``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.workloads.kernels import WORKLOADS, WorkloadSpec


@dataclass
class RunResult:
    """Everything a bench needs from one simulation."""

    workload: str
    config: str
    ipc: float
    cycles: int
    instructions: int
    stats: Dict[str, float] = field(default_factory=dict)
    #: Windowed time-series report from :class:`repro.obs.MetricsCollector`
    #: (``None`` unless the run was started with ``metrics=``).
    metrics: Optional[Dict] = None

    @property
    def chains_avg(self) -> float:
        return self.stats.get("chains.in_use.mean", 0.0)

    @property
    def chains_peak(self) -> float:
        return self.stats.get("chains.in_use.peak", 0.0)

    @property
    def branch_accuracy(self) -> float:
        lookups = (self.stats.get("bpred.correct", 0)
                   + self.stats.get("bpred.mispredicts", 0))
        return self.stats.get("bpred.correct", 0) / lookups if lookups else 0.0

    def __str__(self) -> str:
        return (f"{self.workload}/{self.config}: IPC={self.ipc:.3f} "
                f"({self.instructions} insts, {self.cycles} cycles)")


def resolve_workload(workload: Union[str, WorkloadSpec]) -> WorkloadSpec:
    if isinstance(workload, WorkloadSpec):
        return workload
    try:
        return WORKLOADS[workload]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {workload!r}; known: {known}")
