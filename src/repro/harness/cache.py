"""On-disk simulation-result cache keyed by content hashes.

A simulation is a pure function of its inputs: the workload (deterministic
by construction), the :class:`~repro.common.params.ProcessorParams`, the
instruction budget, and the simulator source itself.  The cache therefore
keys each :class:`~repro.harness.runner.RunResult` by a SHA-256 over

* the canonicalized parameter dataclasses (every field, recursively, in
  sorted-key JSON form — so two structurally equal configs share an entry
  however they were constructed),
* the workload name, scale, instruction and cycle budgets, warmup flags,
* a *source-version token*: a hash over the ``repro`` package sources, so
  any change to the simulator invalidates every cached result.

Entries live as individual JSON files under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``).  A corrupt or unreadable entry is *quarantined*
(moved aside for postmortem, bounded in count) and the cell is
recomputed; the cache never makes a run fail.

Growth is bounded by a :class:`GCPolicy` — size, age, and entry-count
limits applied oldest-first by :func:`prune_dir` / :meth:`ResultCache.gc`.
The same policy object governs the job service's completed-result store
(:mod:`repro.service`), so one knob bounds every on-disk result artifact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.common.params import ProcessorParams
from repro.harness.runner import RunResult

#: Bump when the cached-entry layout changes; part of every key.
SCHEMA_VERSION = 1

_source_token_cache: Optional[str] = None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def source_version_token() -> str:
    """Hash of every ``.py`` file in the installed ``repro`` package.

    Computed once per process.  Any edit to the simulator source changes
    the token, so stale results can never be served after a code change.
    """
    global _source_token_cache
    if _source_token_cache is None:
        import repro
        digest = hashlib.sha256()
        root = Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _source_token_cache = digest.hexdigest()[:16]
    return _source_token_cache


def canonical_params(params: ProcessorParams) -> str:
    """Stable textual form of a parameter tree (sorted-key JSON)."""
    return json.dumps(dataclasses.asdict(params), sort_keys=True,
                      default=str, separators=(",", ":"))


def run_key(workload: str, params: ProcessorParams, *,
            max_instructions: Optional[int] = None,
            scale: int = 1,
            max_cycles: int = 5_000_000,
            warm_code: bool = True,
            token: Optional[str] = None) -> str:
    """Content-hash key for one simulation cell."""
    payload = json.dumps({
        "schema": SCHEMA_VERSION,
        "token": token if token is not None else source_version_token(),
        "workload": workload,
        "scale": scale,
        "max_instructions": max_instructions,
        "max_cycles": max_cycles,
        "warm_code": warm_code,
        "params": dataclasses.asdict(params),
    }, sort_keys=True, default=str, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class GCPolicy:
    """Bounds for an on-disk result store (``None`` = unbounded).

    Applied oldest-first (by mtime): entries older than
    ``max_age_seconds`` go first, then the oldest survivors until both
    ``max_bytes`` and ``max_entries`` hold.  Shared by
    :meth:`ResultCache.gc` and the job service's completed-result store.
    """

    max_bytes: Optional[int] = None
    max_age_seconds: Optional[float] = None
    max_entries: Optional[int] = None

    @property
    def bounded(self) -> bool:
        return (self.max_bytes is not None
                or self.max_age_seconds is not None
                or self.max_entries is not None)


@dataclass
class GCStats:
    """What one garbage-collection pass did."""

    scanned: int = 0
    removed: int = 0
    bytes_freed: int = 0


def prune_dir(directory: os.PathLike, policy: GCPolicy, *,
              suffix: str = ".json",
              now: Optional[float] = None) -> GCStats:
    """Apply ``policy`` to every ``suffix`` file in ``directory``.

    Deletion errors are ignored (another process may be pruning the same
    store); the pass never raises.
    """
    stats = GCStats()
    directory = Path(directory)
    if not policy.bounded or not directory.is_dir():
        return stats
    entries = []
    for path in directory.iterdir():
        if not path.name.endswith(suffix):
            continue
        try:
            info = path.stat()
        except OSError:
            continue
        entries.append((info.st_mtime, info.st_size, path))
    entries.sort()                                   # oldest first
    stats.scanned = len(entries)
    now = time.time() if now is None else now
    total_bytes = sum(size for _mtime, size, _path in entries)
    keep = []
    for mtime, size, path in entries:
        if (policy.max_age_seconds is not None
                and now - mtime > policy.max_age_seconds):
            stats.removed += 1
            stats.bytes_freed += size
            total_bytes -= size
            try:
                path.unlink()
            except OSError:
                pass
        else:
            keep.append((size, path))
    over_count = (len(keep) - policy.max_entries
                  if policy.max_entries is not None else 0)
    for size, path in keep:
        over_bytes = (policy.max_bytes is not None
                      and total_bytes > policy.max_bytes)
        if over_count <= 0 and not over_bytes:
            break
        stats.removed += 1
        stats.bytes_freed += size
        total_bytes -= size
        over_count -= 1
        try:
            path.unlink()
        except OSError:
            pass
    return stats


class ResultCache:
    """Persistent (workload, params) -> RunResult store.

    ``token`` overrides the source-version token (tests use this to prove
    invalidation); ``enabled=False`` turns every operation into a no-op so
    callers can thread one object through unconditionally.  ``gc_policy``
    (optional) bounds the store; :meth:`gc` applies it on demand.
    """

    #: Quarantined corrupt entries kept for postmortem, oldest pruned.
    MAX_QUARANTINE = 16

    def __init__(self, directory: Optional[os.PathLike] = None, *,
                 enabled: bool = True,
                 token: Optional[str] = None,
                 gc_policy: Optional[GCPolicy] = None) -> None:
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self.enabled = enabled
        self.token = token
        self.gc_policy = gc_policy
        self.hits = 0
        self.misses = 0
        self.evictions = 0     # corrupt entries quarantined

    # ------------------------------------------------------------- keys --
    def key_for(self, workload: str, params: ProcessorParams,
                **run_kwargs) -> str:
        return run_key(workload, params, token=self.token, **run_kwargs)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------ lookup --
    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None on miss/corruption."""
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            raw = json.loads(path.read_text())
            if raw["schema"] != SCHEMA_VERSION:
                raise ValueError(f"schema {raw['schema']}")
            result = RunResult(
                workload=raw["workload"], config=raw["config"],
                ipc=raw["ipc"], cycles=raw["cycles"],
                instructions=raw["instructions"], stats=raw["stats"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt entry: quarantine it for postmortem, treat as a miss.
            self.evictions += 1
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside instead of failing or re-reading it."""
        target_dir = self.directory / "quarantine"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            # Quarantine is best-effort; fall back to plain removal so the
            # corrupt file cannot be served again.
            try:
                path.unlink()
            except OSError:
                pass
            return
        prune_dir(target_dir, GCPolicy(max_entries=self.MAX_QUARANTINE))

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / "quarantine"

    def gc(self, policy: Optional[GCPolicy] = None) -> GCStats:
        """Prune the store to ``policy`` (default: the instance policy)."""
        policy = policy if policy is not None else self.gc_policy
        if policy is None or not self.enabled:
            return GCStats()
        return prune_dir(self.directory, policy)

    def put(self, key: str, result: RunResult) -> None:
        """Store a result (atomic write so readers never see a torn file)."""
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_VERSION,
            "workload": result.workload,
            "config": result.config,
            "ipc": result.ipc,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "stats": result.stats,
        }
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def merge(self, entries) -> int:
        """Adopt ``(key, RunResult)`` pairs computed elsewhere.

        The cache-merge half of the execution fabric: a multi-host
        backend pulls what its workers computed (under the same source
        token, so the keys align) back into the submitting side's
        store.  Existing entries are left alone; returns the number of
        new entries written.
        """
        if not self.enabled:
            return 0
        merged = 0
        for key, result in entries:
            if self._path(key).exists():
                continue
            self.put(key, result)
            merged += 1
        return merged

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"ResultCache({self.directory}, {state}, "
                f"hits={self.hits}, misses={self.misses})")
