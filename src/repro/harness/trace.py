"""Text visualizations: per-instruction pipeline traces and segment heatmaps.

Both renderers consume :mod:`repro.obs` artifacts — the event stream a
:class:`~repro.obs.RingBufferTracer` (or ``load_jsonl``) holds, and the
per-segment occupancy series a :class:`~repro.obs.MetricsCollector`
samples.  ``render_pipeline_trace`` draws a gem5-pipeview-style diagram:

    #  123 add              |f....d    i..c  r|

``segment_heatmap`` renders the occupancy series as an ASCII density map
— the quickest way to *see* instructions staging down toward segment 0.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.obs.events import STAGE_KINDS, TraceEvent

#: Stage markers: event kind -> row symbol, in pipeline order.
STAGE_SYMBOLS = {"fetch": "f", "dispatch": "d", "issue": "i",
                 "writeback": "c", "commit": "r"}

DENSITY = " .:-=+*#%@"


def _stage_table(events: Sequence[TraceEvent]) -> Dict[int, dict]:
    """Fold stage events into per-instruction rows: seq -> {kind: cycle,
    "op": mnemonic}.  Later events win (there is at most one of each
    stage kind per seq on the correct path)."""
    table: Dict[int, dict] = {}
    for event in events:
        if event.kind not in STAGE_SYMBOLS or event.seq < 0:
            continue
        row = table.setdefault(event.seq, {})
        row[event.kind] = event.cycle
        if event.op:
            row["op"] = event.op
    return table


def render_pipeline_trace(events: Sequence[TraceEvent], *,
                          start_seq: int = 0, count: int = 32,
                          width: int = 64) -> str:
    """Render the pipeline timeline of ``count`` instructions.

    ``events`` is any iterable of :class:`~repro.obs.TraceEvent`
    (arbitrary order; the window is selected in sequence-number order).
    The time axis is compressed to ``width`` columns spanning the
    window's earliest to its latest stage event; each instruction's row
    marks the cycle of every stage it reached.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    table = _stage_table(events)
    # Window selection happens on the seq-ordered stream: sort first,
    # then filter and slice, so the window is always the `count` oldest
    # instructions at or after `start_seq` regardless of event order.
    seqs = sorted(seq for seq in table if seq >= start_seq)[:count]
    if not seqs:
        return "(no instructions in window)"
    cycles = [cycle for seq in seqs
              for kind, cycle in table[seq].items() if kind != "op"]
    first, last = min(cycles), max(cycles)
    span = max(1, last - first)

    def column(cycle: int) -> int:
        return min(width - 1, (cycle - first) * (width - 1) // span)

    lines = [f"pipeline trace: cycles {first}..{last} "
             f"(f=fetch d=dispatch i=issue c=complete r=commit)"]
    for seq in seqs:
        row = [" "] * width
        for kind in STAGE_KINDS:
            cycle = table[seq].get(kind)
            if cycle is not None:
                col = column(cycle)
                row[col] = (STAGE_SYMBOLS[kind] if row[col] == " "
                            else "*")
        text = table[seq].get("op", "?")
        lines.append(f"#{seq:>6} {text:<24.24} |{''.join(row)}|")
    return "\n".join(lines)


def stage_latency_summary(events: Sequence[TraceEvent]) -> str:
    """Median/percentile latencies between adjacent pipeline stages."""
    pairs = [("fetch", "dispatch", "fetch->dispatch"),
             ("dispatch", "issue", "dispatch->issue"),
             ("issue", "writeback", "issue->complete"),
             ("writeback", "commit", "complete->commit")]
    gaps: Dict[str, List[int]] = {name: [] for _, _, name in pairs}
    for row in _stage_table(events).values():
        for early, late, name in pairs:
            if early in row and late in row:
                gaps[name].append(row[late] - row[early])
    lines = [f"{'stage gap':<18} {'p50':>6} {'p90':>6} {'max':>6} {'n':>7}"]
    for name, values in gaps.items():
        if not values:
            continue
        values.sort()
        p50 = values[len(values) // 2]
        p90 = values[int(len(values) * 0.9)]
        lines.append(f"{name:<18} {p50:>6} {p90:>6} {values[-1]:>6} "
                     f"{len(values):>7}")
    return "\n".join(lines)


def segment_heatmap(samples: Sequence[Sequence[int]], capacity: int, *,
                    columns: int = 72) -> str:
    """Render per-segment occupancy samples as an ASCII heatmap.

    ``samples[t][k]`` is segment k's occupancy at sample t — exactly the
    shape :meth:`repro.obs.MetricsCollector.segment_samples` returns.
    Rows are segments (top segment first, segment 0 last, matching the
    paper's vertical-pipeline drawing); darker characters mean fuller
    segments.
    """
    if not samples:
        return "(no samples)"
    num_segments = len(samples[0])
    bucket = max(1, len(samples) // columns)
    lines = []
    for segment in reversed(range(num_segments)):
        row = []
        for start in range(0, len(samples), bucket):
            chunk = samples[start:start + bucket]
            mean = sum(sample[segment] for sample in chunk) / len(chunk)
            level = min(len(DENSITY) - 1,
                        int(mean * (len(DENSITY) - 1) / max(1, capacity)))
            row.append(DENSITY[level])
        label = "seg 0 (issue)" if segment == 0 else f"seg {segment}"
        lines.append(f"{label:>13} |{''.join(row)}|")
    lines.append(f"{'':>13}  time ->  (darker = fuller, "
                 f"capacity {capacity}/segment)")
    return "\n".join(lines)
