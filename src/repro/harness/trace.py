"""Text visualizations: per-instruction pipeline traces and segment heatmaps.

``render_pipeline_trace`` draws a gem5-pipeview-style diagram from an
annotated dynamic stream (the timing model stamps every DynInst with its
fetch/dispatch/issue/complete/commit cycles):

    #  123 fld f0, r3     |f....d    i..c  r|

``segment_heatmap`` samples a segmented IQ's per-segment occupancy over
time and renders it as an ASCII density map — the quickest way to *see*
instructions staging down toward segment 0.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.isa.instruction import DynInst

#: Stage markers: (attribute, symbol), in pipeline order.
STAGES = (("fetched_cycle", "f"), ("dispatched_cycle", "d"),
          ("issued_cycle", "i"), ("completed_cycle", "c"),
          ("committed_cycle", "r"))

DENSITY = " .:-=+*#%@"


def render_pipeline_trace(stream: Sequence[DynInst], *,
                          start_seq: int = 0, count: int = 32,
                          width: int = 64) -> str:
    """Render the pipeline timeline of ``count`` instructions.

    The time axis is compressed to ``width`` columns spanning the window's
    earliest fetch to its latest commit; each instruction's row marks the
    cycle of every stage it reached.
    """
    window = [inst for inst in stream
              if inst.seq >= start_seq and inst.fetched_cycle >= 0]
    window = window[:count]
    if not window:
        return "(no instructions in window)"
    first = min(inst.fetched_cycle for inst in window)
    last = max(max(getattr(inst, attr) for attr, _ in STAGES)
               for inst in window)
    span = max(1, last - first)

    def column(cycle: int) -> int:
        return min(width - 1, (cycle - first) * (width - 1) // span)

    lines = [f"pipeline trace: cycles {first}..{last} "
             f"(f=fetch d=dispatch i=issue c=complete r=commit)"]
    for inst in window:
        row = [" "] * width
        for attr, symbol in STAGES:
            cycle = getattr(inst, attr)
            if cycle >= 0:
                col = column(cycle)
                row[col] = symbol if row[col] == " " else "*"
        text = f"{inst.static}"
        lines.append(f"#{inst.seq:>6} {text:<24.24} |{''.join(row)}|")
    return "\n".join(lines)


def stage_latency_summary(stream: Sequence[DynInst]) -> str:
    """Median/percentile latencies between adjacent pipeline stages."""
    gaps = {"fetch->dispatch": [], "dispatch->issue": [],
            "issue->complete": [], "complete->commit": []}
    pairs = [("fetched_cycle", "dispatched_cycle", "fetch->dispatch"),
             ("dispatched_cycle", "issued_cycle", "dispatch->issue"),
             ("issued_cycle", "completed_cycle", "issue->complete"),
             ("completed_cycle", "committed_cycle", "complete->commit")]
    for inst in stream:
        for early, late, name in pairs:
            a, b = getattr(inst, early), getattr(inst, late)
            if a >= 0 and b >= 0:
                gaps[name].append(b - a)
    lines = [f"{'stage gap':<18} {'p50':>6} {'p90':>6} {'max':>6} {'n':>7}"]
    for name, values in gaps.items():
        if not values:
            continue
        values.sort()
        p50 = values[len(values) // 2]
        p90 = values[int(len(values) * 0.9)]
        lines.append(f"{name:<18} {p50:>6} {p90:>6} {values[-1]:>6} "
                     f"{len(values):>7}")
    return "\n".join(lines)


def segment_heatmap(samples: Sequence[Sequence[int]], capacity: int, *,
                    columns: int = 72) -> str:
    """Render per-segment occupancy samples as an ASCII heatmap.

    ``samples[t][k]`` is segment k's occupancy at sample t.  Rows are
    segments (top segment first, segment 0 last, matching the paper's
    vertical-pipeline drawing); darker characters mean fuller segments.
    """
    if not samples:
        return "(no samples)"
    num_segments = len(samples[0])
    bucket = max(1, len(samples) // columns)
    lines = []
    for segment in reversed(range(num_segments)):
        row = []
        for start in range(0, len(samples), bucket):
            chunk = samples[start:start + bucket]
            mean = sum(sample[segment] for sample in chunk) / len(chunk)
            level = min(len(DENSITY) - 1,
                        int(mean * (len(DENSITY) - 1) / max(1, capacity)))
            row.append(DENSITY[level])
        label = "seg 0 (issue)" if segment == 0 else f"seg {segment}"
        lines.append(f"{label:>13} |{''.join(row)}|")
    lines.append(f"{'':>13}  time ->  (darker = fuller, "
                 f"capacity {capacity}/segment)")
    return "\n".join(lines)


def collect_segment_samples(processor, *, interval: int = 50,
                            max_cycles: int = 2_000_000) -> List[List[int]]:
    """Run a segmented-IQ processor to completion, sampling occupancies."""
    samples: List[List[int]] = []
    while not processor.done and processor.cycle < max_cycles:
        processor.step()
        if processor.cycle % interval == 0:
            samples.append(processor.iq.segment_occupancies())
    return samples
