"""Event-weighted energy proxy for the instruction queue and core.

The paper's section 7 raises the key power question for the segmented
design: "Copying an instruction from segment to segment consumes more
dynamic power than keeping the instruction in a single storage location
between dispatch and issue; whether the performance benefit ... justifies
this power consumption will depend on the detailed design."

This model makes that trade-off quantifiable at the fidelity a cycle
simulator supports: every microarchitectural event is charged a relative
weight (normalized so a conventional-IQ dispatch+issue pair costs ~2
units), and the per-cycle static charge scales with the structures that
are powered — for the segmented IQ, the powered-segment count when
dynamic resizing is on.  The absolute numbers are proxies, not joules;
comparisons between configurations of the same machine are the intended
use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

#: Relative dynamic-energy weights per event.  The segmented IQ's extra
#: costs are the per-segment copies (promotions/pushdowns) and chain-wire
#: broadcasts; the conventional IQ's is the full-width tag broadcast on
#: every issue (which grows with queue size — modeled by the caller via
#: `wakeup_width_factor`).
DEFAULT_WEIGHTS: Dict[str, float] = {
    "iq.dispatched": 1.0,       # write a queue entry
    "iq.issued": 1.0,           # select + read out
    "iq.promotions": 0.8,       # copy between segments (section 7's worry)
    "iq.pushdowns": 0.8,
    "chains.allocated": 0.3,    # chain-wire setup + RIT update
    "lsq.loads": 0.7,
    "lsq.stores": 0.7,
    "l1d.accesses": 1.2,
    "l2.accesses": 4.0,
    "mem.accesses": 40.0,
    "bpred.lookups": 0.1,
    "committed": 0.3,
}


@dataclass
class EnergyModel:
    """Computes an energy-proxy breakdown from a stats dictionary."""

    weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS))
    #: Static/idle charge per powered IQ segment per cycle.
    segment_static_per_cycle: float = 0.05
    #: Extra per-issue wakeup cost per 32 searchable entries (the
    #: conventional IQ broadcasts across the whole queue; the segmented
    #: design searches one 32-entry segment).
    wakeup_cost_per_32_entries: float = 0.2

    def estimate(self, stats: Mapping[str, float], *,
                 iq_kind: str = "segmented", iq_size: int = 512,
                 segment_size: int = 32,
                 num_segments: int = 16) -> Dict[str, float]:
        """Return an energy breakdown (units are relative, see module doc).

        ``stats`` is a flattened stats dict (``RunResult.stats`` or
        ``StatGroup.as_dict()``).
        """
        breakdown: Dict[str, float] = {}
        for event, weight in self.weights.items():
            count = stats.get(event, 0.0)
            if count:
                breakdown[event] = count * weight

        cycles = stats.get("cycles", 0.0)
        issued = stats.get("iq.issued", 0.0)
        if iq_kind == "segmented":
            searchable = segment_size
            powered_cycles = stats.get("iq.powered_segment_cycles", 0.0)
            if not powered_cycles:
                powered_cycles = num_segments * cycles
        else:
            searchable = iq_size
            powered_cycles = max(1, iq_size // segment_size) * cycles
        breakdown["wakeup_broadcast"] = (
            issued * self.wakeup_cost_per_32_entries * searchable / 32.0)
        breakdown["static_segments"] = (
            powered_cycles * self.segment_static_per_cycle)
        breakdown["total"] = sum(value for key, value in breakdown.items()
                                 if key != "total")
        return breakdown

    def estimate_run(self, result, params) -> Dict[str, float]:
        """Convenience overload taking a RunResult and ProcessorParams."""
        iq = params.iq
        return self.estimate(result.stats, iq_kind=iq.kind,
                             iq_size=iq.size, segment_size=iq.segment_size,
                             num_segments=iq.num_segments)


def energy_per_instruction(breakdown: Mapping[str, float],
                           instructions: int) -> float:
    """Total proxy energy divided by committed instructions (EPI)."""
    if not instructions:
        return 0.0
    return breakdown.get("total", 0.0) / instructions


def format_breakdown(breakdown: Mapping[str, float]) -> str:
    """Render the breakdown largest-first."""
    total = breakdown.get("total", 0.0) or 1.0
    lines = [f"{'component':<22} {'energy':>12} {'share':>7}"]
    for key, value in sorted(breakdown.items(),
                             key=lambda item: -item[1]):
        if key == "total":
            continue
        lines.append(f"{key:<22} {value:>12.1f} {100 * value / total:>6.1f}%")
    lines.append(f"{'total':<22} {breakdown.get('total', 0.0):>12.1f}")
    return "\n".join(lines)
