"""Memory request objects exchanged between the core and the caches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

#: Where a request was satisfied.  ``delayed`` is the paper's "delayed hit":
#: a load that references a block already being fetched by an earlier miss
#: (it merges into the outstanding MSHR instead of missing again).
LEVEL_L1 = "l1"
LEVEL_L2 = "l2"
LEVEL_MEM = "mem"
LEVEL_DELAYED = "delayed"
LEVEL_FORWARD = "forward"   # store-to-load forwarding inside the LSQ

CompleteCallback = Callable[["MemRequest"], None]
MissCallback = Callable[["MemRequest"], None]


@dataclass
class MemRequest:
    """One cache access.

    ``on_complete`` fires when the data is available (hit latency after a
    hit, full miss path after a miss).  ``on_miss`` fires the moment the
    first-level lookup detects a miss — the segmented IQ uses this to send
    the "suspend self-timing" signal up the chain wire (paper section 3.4).
    """

    addr: int
    is_write: bool = False
    on_complete: Optional[CompleteCallback] = None
    on_miss: Optional[MissCallback] = None
    #: Filled in by the hierarchy when the request completes.
    level: Optional[str] = None
    issued_cycle: int = -1
    completed_cycle: int = -1

    def complete(self, level: str, now: int) -> None:
        self.level = level
        self.completed_cycle = now
        if self.on_complete is not None:
            self.on_complete(self)

    def notify_miss(self) -> None:
        if self.on_miss is not None:
            self.on_miss(self)
