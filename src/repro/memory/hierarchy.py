"""Assembles the full memory hierarchy from Table 1 parameters.

Layout::

    L1I --\\
           >--- (64 B/cyc link) --- L2 --- (8 B/cyc link) --- main memory
    L1D --/
"""

from __future__ import annotations

from repro.common.events import EventQueue
from repro.common.params import MemoryParams
from repro.common.stats import StatGroup
from repro.memory.cache import Cache, MainMemory
from repro.memory.link import BandwidthLink
from repro.memory.request import MemRequest


class MemoryHierarchy:
    """L1 instruction cache, L1 data cache, unified L2, main memory."""

    def __init__(self, params: MemoryParams, events: EventQueue,
                 stats: StatGroup) -> None:
        params.validate()
        self.params = params
        self.events = events

        memory_link = BandwidthLink(
            "link.mem", params.memory_bandwidth_bytes, events, stats)
        self.main_memory = MainMemory(
            params.main_memory_latency, memory_link, events, stats)

        l2_link = BandwidthLink(
            "link.l2", params.l2_bandwidth_bytes, events, stats)
        self.l2 = Cache("l2", params.l2, "l2", self.main_memory,
                        memory_link, events, stats)

        self.l1d = Cache("l1d", params.l1d, "l1", self.l2, l2_link,
                         events, stats, classify_delayed=True)
        self.l1i = Cache("l1i", params.l1i, "l1", self.l2, l2_link,
                         events, stats)

    def data_access(self, request: MemRequest) -> bool:
        """Issue a data access; False means retry later (MSHRs full)."""
        return self.l1d.access(request)

    def inst_access(self, request: MemRequest) -> bool:
        """Issue an instruction fetch access."""
        return self.l1i.access(request)

    def would_hit_l1d(self, addr: int) -> bool:
        """Is ``addr`` resident in the L1 data cache right now?"""
        return self.l1d.would_hit(addr)

    # --------------------------------------------------------- warm state --
    def tag_state(self) -> dict:
        """Tag/LRU/dirty state of every level, as plain data."""
        return {"l1i": self.l1i.tag_state(),
                "l1d": self.l1d.tag_state(),
                "l2": self.l2.tag_state()}

    def load_tag_state(self, state: dict) -> None:
        """Install per-level tag state captured by :meth:`tag_state` (or
        produced by functional warming — see ``repro.sampling``)."""
        self.l1i.load_tag_state(state["l1i"])
        self.l1d.load_tag_state(state["l1d"])
        self.l2.load_tag_state(state["l2"])
