"""Bandwidth-limited link between memory-hierarchy levels.

The paper's Table 1 gives 64 bytes/cycle between L1 and L2 and 8 bytes/cycle
to main memory.  A line transfer occupies the link for
``ceil(line_bytes / bytes_per_cycle)`` cycles; transfers serialize.
"""

from __future__ import annotations

from repro.common.events import EventQueue
from repro.common.stats import StatGroup


class BandwidthLink:
    """Models occupancy of a transfer link; returns per-transfer delay."""

    def __init__(self, name: str, bytes_per_cycle: int,
                 events: EventQueue, stats: StatGroup) -> None:
        self.name = name
        self.bytes_per_cycle = max(1, bytes_per_cycle)
        self._events = events
        self._next_free = 0
        self._transfers = stats.counter(f"{name}.transfers",
                                        "line transfers over this link")
        self._busy_cycles = stats.counter(f"{name}.busy_cycles",
                                          "cycles the link was occupied")
        self._queue_cycles = stats.counter(f"{name}.queue_cycles",
                                           "cycles requests waited for the link")

    def transfer_cycles(self, size_bytes: int) -> int:
        return -(-size_bytes // self.bytes_per_cycle)

    def request(self, size_bytes: int) -> int:
        """Reserve the link for a transfer; return total delay from now.

        The delay includes both queuing behind earlier transfers and the
        transfer time itself.
        """
        now = self._events.now
        start = max(now, self._next_free)
        duration = self.transfer_cycles(size_bytes)
        self._next_free = start + duration
        self._transfers.inc()
        self._busy_cycles.inc(duration)
        self._queue_cycles.inc(start - now)
        return self._next_free - now
