"""Event-driven memory hierarchy: caches, MSHRs, links, main memory."""

from repro.memory.cache import Cache, MainMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.link import BandwidthLink
from repro.memory.request import (LEVEL_DELAYED, LEVEL_FORWARD, LEVEL_L1,
                                  LEVEL_L2, LEVEL_MEM, MemRequest)

__all__ = [
    "BandwidthLink", "Cache", "LEVEL_DELAYED", "LEVEL_FORWARD", "LEVEL_L1",
    "LEVEL_L2", "LEVEL_MEM", "MainMemory", "MemRequest", "MemoryHierarchy",
]
