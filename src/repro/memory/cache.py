"""Set-associative, non-blocking, write-back cache with MSHRs.

Timing-only model: data values come from the functional simulator, so the
cache tracks tags, LRU state, dirty bits, and miss status holding registers
(MSHRs), but no data.  Misses to the same line merge into one MSHR — the
paper's *delayed hits* ("a load references a block which is in the process
of being fetched", section 6.1).

Each cache talks to the next level through ``access_line`` and receives
fills through a callback; line transfers are serialized on a
:class:`~repro.memory.link.BandwidthLink`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.events import EventQueue
from repro.common.params import CacheParams
from repro.common.stats import StatGroup
from repro.memory.link import BandwidthLink
from repro.memory.request import LEVEL_DELAYED, MemRequest

LineCallback = Callable[[str], None]


@dataclass
class _MSHR:
    """One outstanding miss: the line being fetched and who is waiting."""

    line_addr: int
    # (callback, was_merged): merged requesters are the delayed hits.
    waiters: List[Tuple[LineCallback, bool]] = field(default_factory=list)
    any_write: bool = False


class MainMemory:
    """The DRAM end of the hierarchy: fixed latency plus bus serialization."""

    def __init__(self, latency: int, link: BandwidthLink,
                 events: EventQueue, stats: StatGroup) -> None:
        self.latency = latency
        self._link = link           # kept for reference; the requesting
        self._events = events       # cache charges the bus on the fill side
        self._accesses = stats.counter("mem.accesses", "main memory accesses")

    def access_line(self, line_addr: int, is_write: bool,
                    callback: LineCallback, line_bytes: int = 64) -> None:
        """Return the line after the access latency.  Bus occupancy for the
        data transfer is charged by the requesting cache when the fill
        crosses the link, so it is not charged again here."""
        self._accesses.inc()
        self._events.schedule(self.latency, lambda: callback("mem"))


class Cache:
    """One cache level.

    ``classify_delayed`` controls whether merged misses report the special
    ``"delayed"`` level (true for the L1 data cache, where the distinction
    matters to the hit/miss predictor analysis).
    """

    def __init__(self, name: str, params: CacheParams, level_label: str,
                 next_level, link_to_next: BandwidthLink,
                 events: EventQueue, stats: StatGroup, *,
                 classify_delayed: bool = False) -> None:
        params.validate(name)
        self.name = name
        self.params = params
        self.level_label = level_label
        self.next_level = next_level
        self._link = link_to_next
        self._events = events
        self._classify_delayed = classify_delayed

        self._num_sets = params.num_sets
        self._line_shift = params.line_bytes.bit_length() - 1
        # Per set: list of [tag, dirty], most-recently-used first.
        self._sets: List[List[List]] = [[] for _ in range(self._num_sets)]
        self._mshrs: Dict[int, _MSHR] = {}
        # Requests waiting for a free MSHR (back-pressure from next level).
        self._mshr_queue: List[Tuple[int, bool, LineCallback, ]] = []

        self.stat_accesses = stats.counter(f"{name}.accesses")
        self.stat_hits = stats.counter(f"{name}.hits")
        self.stat_misses = stats.counter(f"{name}.misses")
        self.stat_delayed_hits = stats.counter(
            f"{name}.delayed_hits", "misses merged into an outstanding MSHR")
        self.stat_writebacks = stats.counter(f"{name}.writebacks")
        self.stat_mshr_full = stats.counter(
            f"{name}.mshr_full_retries", "accesses rejected: all MSHRs busy")

    # ---------------------------------------------------------- geometry --
    def line_addr(self, addr: int) -> int:
        return addr >> self._line_shift

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self._num_sets

    # ------------------------------------------------------------ lookup --
    def _find_no_lru(self, line_addr: int) -> Optional[List]:
        """Residence check without touching LRU state."""
        for entry in self._sets[self._set_index(line_addr)]:
            if entry[0] == line_addr:
                return entry
        return None

    def _find(self, line_addr: int) -> Optional[List]:
        """Return the [tag, dirty] entry if resident, updating LRU order."""
        cache_set = self._sets[self._set_index(line_addr)]
        for position, entry in enumerate(cache_set):
            if entry[0] == line_addr:
                if position:
                    cache_set.pop(position)
                    cache_set.insert(0, entry)
                return entry
        return None

    def contains(self, addr: int) -> bool:
        """Non-destructive residence check (no LRU update) for tests."""
        line = self.line_addr(addr)
        return any(entry[0] == line
                   for entry in self._sets[self._set_index(line)])

    def would_hit(self, addr: int) -> bool:
        """Would an access to ``addr`` hit right now (resident, not in-flight)?

        Used by the processor to give the hit/miss predictor its training
        signal at the time the prediction is resolved.
        """
        return self.contains(addr)

    def touch(self, addr: int) -> bool:
        """Probe for ``addr``: on a hit, update LRU and count it; on a miss,
        return False without allocating anything.  The fetch unit uses this
        to test line availability before committing to a fill request.
        """
        if self._find(self.line_addr(addr)) is not None:
            self.stat_accesses.inc()
            self.stat_hits.inc()
            return True
        return False

    # ------------------------------------------------------------ access --
    def access(self, request: MemRequest) -> bool:
        """Core-side access.  Returns False if the request must retry
        (no MSHR available for a new miss).  Rejected attempts are not
        counted as accesses, so replays do not inflate the access stats."""
        line = self.line_addr(request.addr)
        if (self._find_no_lru(line) is None and line not in self._mshrs
                and len(self._mshrs) >= self.params.mshr_entries):
            self.stat_mshr_full.inc()
            return False
        self.stat_accesses.inc()
        request.issued_cycle = self._events.now

        entry = self._find(line)
        if entry is not None:
            self.stat_hits.inc()
            if request.is_write:
                entry[1] = True
            now = self._events
            self._events.schedule(
                self.params.hit_latency,
                lambda: request.complete(self.level_label, now.now))
            return True

        if line in self._mshrs:
            # Delayed hit: merge into the outstanding miss.
            self.stat_delayed_hits.inc()
            request.notify_miss()
            mshr = self._mshrs[line]
            mshr.any_write = mshr.any_write or request.is_write
            level = LEVEL_DELAYED if self._classify_delayed else self.level_label
            events = self._events
            mshr.waiters.append(
                (lambda lvl, req=request, level=level:
                 req.complete(level, events.now), True))
            return True

        self.stat_misses.inc()
        request.notify_miss()
        events = self._events
        self._allocate_mshr(
            line, request.is_write,
            lambda lvl, req=request: req.complete(lvl, events.now))
        return True

    def access_line(self, line_byte_addr: int, is_write: bool,
                    callback: LineCallback, line_bytes: int = 64) -> None:
        """Upper-level access (line granularity).  Queues if MSHRs are full."""
        self.stat_accesses.inc()
        line = self.line_addr(line_byte_addr)

        entry = self._find(line)
        if entry is not None:
            self.stat_hits.inc()
            if is_write:
                entry[1] = True
            delay = self.params.hit_latency + self._return_delay()
            self._events.schedule(delay, lambda: callback(self.level_label))
            return

        if line in self._mshrs:
            self.stat_delayed_hits.inc()
            mshr = self._mshrs[line]
            mshr.any_write = mshr.any_write or is_write
            mshr.waiters.append((callback, True))
            return

        if len(self._mshrs) >= self.params.mshr_entries:
            self.stat_mshr_full.inc()
            self._mshr_queue.append((line, is_write, callback))
            return

        self.stat_misses.inc()
        self._allocate_mshr(line, is_write, callback)

    def _return_delay(self) -> int:
        """Delay to send a line back up to the requester (0 for the L1s,
        whose hit latency already includes data return)."""
        return 0

    # ------------------------------------------------------------- fills --
    def _allocate_mshr(self, line: int, is_write: bool,
                       callback: LineCallback) -> None:
        mshr = _MSHR(line_addr=line, any_write=is_write)
        mshr.waiters.append((callback, False))
        self._mshrs[line] = mshr
        # Tag lookup consumed hit_latency before the miss goes downstream.
        self._events.schedule(
            self.params.hit_latency,
            lambda: self.next_level.access_line(
                line << self._line_shift, False,
                lambda level, l=line: self._fill_arrived(l, level),
                self.params.line_bytes))

    def _fill_arrived(self, line: int, fill_level: str) -> None:
        """The next level produced the line; move it over the link, then
        install it and wake all waiters."""
        delay = self._link.request(self.params.line_bytes)
        self._events.schedule(delay, lambda: self._install(line, fill_level))

    def _install(self, line: int, fill_level: str) -> None:
        mshr = self._mshrs.pop(line)
        cache_set = self._sets[self._set_index(line)]
        if len(cache_set) >= self.params.assoc:
            victim = cache_set.pop()
            if victim[1]:
                self.stat_writebacks.inc()
                self._link.request(self.params.line_bytes)
        cache_set.insert(0, [line, mshr.any_write])
        for callback, merged in mshr.waiters:
            callback(fill_level)
        self._drain_mshr_queue()

    def _drain_mshr_queue(self) -> None:
        while self._mshr_queue and len(self._mshrs) < self.params.mshr_entries:
            line, is_write, callback = self._mshr_queue.pop(0)
            if self._find(line) is not None:
                # Filled while queued: a (late) hit.
                self.stat_hits.inc()
                delay = self.params.hit_latency + self._return_delay()
                self._events.schedule(
                    delay, lambda cb=callback: cb(self.level_label))
            elif line in self._mshrs:
                self.stat_delayed_hits.inc()
                self._mshrs[line].waiters.append((callback, True))
            else:
                self.stat_misses.inc()
                self._allocate_mshr(line, is_write, callback)

    # --------------------------------------------------------- warm state --
    def tag_state(self) -> List[List[List]]:
        """Tag/LRU/dirty state as plain data: per set, MRU-first
        ``[line_addr, dirty]`` pairs.  In-flight MSHR state is deliberately
        not captured — checkpoints are taken at quiesced (functional)
        points where no misses are outstanding.
        """
        return [[list(entry) for entry in cache_set]
                for cache_set in self._sets]

    def load_tag_state(self, sets: List[List[List]]) -> None:
        """Install tag state captured by :meth:`tag_state` (or produced by
        functional warming).  Stats and MSHRs are untouched."""
        if len(sets) != self._num_sets:
            raise ValueError(f"{self.name}: snapshot has {len(sets)} sets, "
                             f"this cache has {self._num_sets}")
        self._sets = [[list(entry)[:2] for entry in cache_set]
                      for cache_set in sets]

    # ------------------------------------------------------------- admin --
    def warm_line(self, addr: int, dirty: bool = False) -> None:
        """Pre-install the line containing ``addr`` (for tests/warmup)."""
        line = self.line_addr(addr)
        if self._find(line) is not None:
            return
        cache_set = self._sets[self._set_index(line)]
        if len(cache_set) >= self.params.assoc:
            cache_set.pop()
        cache_set.insert(0, [line, dirty])

    @property
    def outstanding_misses(self) -> int:
        return len(self._mshrs)
