"""Sweep journal: an append-only record of per-cell execution state.

A journaled sweep is a fold over JSONL events, one per state change::

    {"key": "<run_key>", "state": "pending",  "label": "dot/paper-32"}
    {"key": "<run_key>", "state": "running"}
    {"key": "<run_key>", "state": "done"}

States: ``pending`` (admitted), ``running`` (submitted to a backend),
``cached`` (satisfied from the ResultCache without executing),
``done`` (executed and stored), ``failed`` (executed, raised).

Cells are keyed by their cache ``run_key`` — the same identity the
:class:`~repro.harness.cache.ResultCache` uses — so a journal is only
meaningful alongside a cache: a *resumed* sweep treats journaled
``done``/``cached`` cells as "done-in-cache" and re-executes none of
them (the result comes from the cache; if the entry was evicted the
cell simply runs again).  ``failed`` and ``running`` cells re-run —
``running`` means the previous process died mid-cell.

Same discipline as the service's job journal (PR 8): every append is
fsync'd before the state is acted on, replay tolerates a torn final
line (a crash mid-append), and compaction rewrites atomically via
``os.replace``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

#: Terminal-success states: the cell's result is in the cache.
DONE_STATES = ("done", "cached")

_STATES = ("pending", "running", "cached", "done", "failed")


class SweepJournal:
    """Append-only per-cell state journal for resumable sweeps."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        #: Latest state per key, as replayed at open + appended since.
        self.states: Dict[str, str] = {}
        #: Label per key (from the first "pending" record), for reports.
        self.labels: Dict[str, str] = {}
        #: A crash mid-append leaves a torn line with no newline; the
        #: next append must start a fresh line or it glues onto it.
        self._heal_tail = False
        if self.path.exists():
            self._replay()

    # ------------------------------------------------------------ replay --
    def _replay(self) -> None:
        try:
            raw = self.path.read_text()
        except OSError:
            return
        self._heal_tail = bool(raw) and not raw.endswith("\n")
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key, state = record["key"], record["state"]
            except (ValueError, KeyError, TypeError):
                continue                 # torn tail or foreign line
            if state not in _STATES:
                continue
            self.states[key] = state
            label = record.get("label")
            if label:
                self.labels.setdefault(key, label)

    # ------------------------------------------------------------ append --
    def record(self, key: str, state: str,
               label: Optional[str] = None) -> None:
        """Append one state change (fsync'd before returning)."""
        if state not in _STATES:
            raise ValueError(f"unknown journal state {state!r}")
        entry: Dict[str, str] = {"key": key, "state": state}
        if label:
            entry["label"] = label
            self.labels.setdefault(key, label)
        self.states[key] = state
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            if self._heal_tail:
                handle.write("\n")
                self._heal_tail = False
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # ----------------------------------------------------------- queries --
    def done(self, key: str) -> bool:
        """True when the journal says this cell's result is in the cache."""
        return self.states.get(key) in DONE_STATES

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for state in self.states.values():
            out[state] = out.get(state, 0) + 1
        return out

    # ----------------------------------------------------------- compact --
    def compact(self) -> None:
        """Rewrite as one line per key (latest state), atomically."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w") as handle:
            for key, state in self.states.items():
                entry = {"key": key, "state": state}
                label = self.labels.get(key)
                if label:
                    entry["label"] = label
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def __repr__(self) -> str:
        return f"SweepJournal({self.path}, {self.counts()})"
