"""The ``local-process`` backend: the spawn-safe pool behind the protocol.

This is the refactored form of the original ``ParallelExecutor``
machinery — a :class:`concurrent.futures.ProcessPoolExecutor` for cell
batches, dedicated worker processes for cancellable tasks — with the
same degradation ladder: ``jobs=1`` runs in-process, a payload that
fails to pickle or a pool that cannot start falls back to serial, a
worker that raises (or dies) surfaces as a per-cell
:class:`~repro.fabric.cells.CellError`, never a hung sweep.  Results
are bit-identical to serial execution by construction (workers share no
state; every cell rebuilds its program from the workload registry).
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple

from repro.fabric.base import ExecutionBackend, register_backend
from repro.fabric.cells import (CellError, RunSpec, _execute_spec,
                                _guarded_call, _handle_worker, default_jobs)
from repro.fabric.handles import CellHandle, CompletedHandle, FutureHandle


def submit_detached(func: Callable, item, *, label: str = "task",
                    start_method: Optional[str] = None) -> CellHandle:
    """Start ``func(item, emit)`` in its own dedicated worker process.

    Returns a :class:`CellHandle` immediately; the caller polls or
    cancels it.  ``func`` must be module-level (picklable) and take an
    ``emit(dict)`` second argument for progress streaming.  Each
    submission owns a process — that costs a fork per task but makes
    cancellation a hard kill, the contract the job service's timeouts
    and aborts need.
    """
    context = multiprocessing.get_context(start_method)
    parent, child = context.Pipe(duplex=False)
    process = context.Process(target=_handle_worker,
                              args=(child, func, item, label),
                              daemon=True)
    process.start()
    child.close()
    return CellHandle(label, process, parent)


def run_task_batch(func: Callable, items: Sequence,
                   labels: Optional[Sequence[str]] = None, *,
                   jobs: int,
                   start_method: Optional[str] = None,
                   progress: Optional[Callable[[int, int], None]] = None
                   ) -> Tuple[List, bool]:
    """Apply ``func`` to every item over a one-shot pool, in input order.

    The batch-map primitive behind ``Executor.map`` (and the deprecated
    ``ParallelExecutor.map``): a fresh pool per call, serial fallback on
    unpicklable payloads or a pool that cannot start, per-cell errors.
    Returns ``(results, fell_back_to_serial)``.
    """
    if labels is None:
        labels = [f"task[{index}]" for index in range(len(items))]
    payloads = [(func, item, label) for item, label in zip(items, labels)]

    def serial() -> List:
        results = []
        for payload in payloads:
            results.append(_guarded_call(payload))
            if progress is not None:
                progress(len(results), len(payloads))
        return results

    if jobs <= 1 or len(payloads) <= 1:
        return serial(), False
    try:
        pickle.dumps(payloads)
    except Exception:
        return serial(), True
    workers = min(jobs, len(payloads))
    context = (multiprocessing.get_context(start_method)
               if start_method else None)
    results: List = [None] * len(payloads)
    try:
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            futures = [pool.submit(_guarded_call, payload)
                       for payload in payloads]
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    results[index] = CellError(
                        label=labels[index],
                        error="worker process died (BrokenProcessPool)")
                except Exception as exc:   # noqa: BLE001
                    results[index] = CellError(
                        label=labels[index],
                        error=f"{type(exc).__name__}: {exc}")
                if progress is not None:
                    progress(index + 1, len(payloads))
    except (OSError, BrokenProcessPool):
        # Pool could not start at all (fd limits, sandboxing):
        # degrade to serial rather than fail the sweep.
        return serial(), True
    return results, False


class LocalProcessBackend(ExecutionBackend):
    """Single-host process-pool backend (the default)."""

    name = "local-process"

    def __init__(self, *, jobs: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        #: True when any cell degraded to in-process serial execution.
        self.fell_back_to_serial = False

    # --------------------------------------------------------- protocol --
    def capacity(self) -> int:
        return self.jobs

    def submit(self, spec: RunSpec):
        return self._submit_payload(_execute_spec, spec, spec.label)

    def submit_task(self, func: Callable, item, *, label: str = "task"):
        return submit_detached(func, item, label=label,
                               start_method=self.start_method)

    def merge_cache(self, cache) -> int:
        return 0                         # workers share the local cache

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # --------------------------------------------------------- internals --
    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool is None and not self._pool_broken:
            context = (multiprocessing.get_context(self.start_method)
                       if self.start_method else None)
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs,
                                                 mp_context=context)
            except (OSError, BrokenProcessPool):
                self._pool_broken = True
        return self._pool

    def _submit_payload(self, func: Callable, item, label: str):
        payload = (func, item, label)
        if self.jobs <= 1:               # serial by request, not fallback
            return CompletedHandle(label, _guarded_call(payload))
        try:
            pickle.dumps(payload)
        except Exception:
            self.fell_back_to_serial = True
            return CompletedHandle(label, _guarded_call(payload))
        pool = self._ensure_pool()
        if pool is None:
            self.fell_back_to_serial = True
            return CompletedHandle(label, _guarded_call(payload))
        try:
            future = pool.submit(_guarded_call, payload)
        except (RuntimeError, OSError, BrokenProcessPool):
            self._pool_broken = True
            self.fell_back_to_serial = True
            return CompletedHandle(label, _guarded_call(payload))
        return FutureHandle(label, future)


register_backend("local-process", LocalProcessBackend)
