"""The ``local-shm`` backend: fork-server workers + shared-memory results.

The pool backend pays per-cell serialization twice — the spec pickled
in, the whole ``RunResult`` (a stats dict of a few hundred entries)
pickled back out through a feeder-thread/queue stack.  This backend
keeps a set of long-lived *forked* workers, each with an anonymous
``mmap`` shared with the parent, and ships results as **compact stat
snapshots**: the worker packs ``ipc/cycles/instructions`` plus the stat
values as a raw float64 array straight into shared memory, and sends
only a tiny control tuple over the pipe.  Stat *keys* are interned: a
key table is transmitted once per distinct key set (a sweep has one per
IQ kind, not one per cell), then referenced by id.

Bit-identity: the worker runs the same ``_execute_spec`` as every other
backend; integer-valued stats are flagged in a mask and restored to
``int`` on the parent side, so the reconstructed ``RunResult`` equals
the serial one field-for-field.  Cells a snapshot cannot carry
(``metrics`` time series, oversized stat sets) fall back to pickling
that one result over the pipe.

Requires the ``fork`` start method (the mmap is inherited, never
pickled); constructing the backend elsewhere raises
:class:`~repro.common.errors.ConfigurationError`.
"""

from __future__ import annotations

import mmap
import multiprocessing
import struct
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.fabric.base import ExecutionBackend, register_backend
from repro.fabric.cells import (CellError, RunSpec, _execute_spec,
                                default_jobs)
from repro.fabric.local import submit_detached
from repro.harness.runner import RunResult

#: Snapshot header: ipc (f64), cycles, instructions, value count.
_HEADER = struct.Struct("<dqqq")

#: Default per-worker shared buffer; a stats dict would need ~32k
#: entries to overflow it, at which point the pipe fallback kicks in.
DEFAULT_BUFFER_BYTES = 256 * 1024


def _snapshot_pack(buf: mmap.mmap, result: RunResult,
                   keys: Tuple[str, ...]) -> Optional[bytes]:
    """Pack ``result`` into ``buf``; returns the int-mask, or None when
    the snapshot does not fit (caller falls back to the pipe)."""
    values = [result.stats[key] for key in keys]
    need = _HEADER.size + 8 * len(values)
    if need > len(buf):
        return None
    mask = bytearray((len(values) + 7) // 8)
    floats: List[float] = []
    for index, value in enumerate(values):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None                  # exotic stat value: pipe fallback
        if isinstance(value, int):
            if abs(value) > 2 ** 53:     # not exactly representable
                return None
            mask[index // 8] |= 1 << (index % 8)
        floats.append(float(value))
    _HEADER.pack_into(buf, 0, result.ipc, result.cycles,
                      result.instructions, len(floats))
    if floats:
        struct.pack_into(f"<{len(floats)}d", buf, _HEADER.size, *floats)
    return bytes(mask)


def _snapshot_unpack(buf: mmap.mmap, keys: Tuple[str, ...], mask: bytes,
                     workload: str, config: str) -> RunResult:
    ipc, cycles, instructions, count = _HEADER.unpack_from(buf, 0)
    values = (struct.unpack_from(f"<{count}d", buf, _HEADER.size)
              if count else ())
    stats = {}
    for index, (key, value) in enumerate(zip(keys, values)):
        if mask[index // 8] & (1 << (index % 8)):
            value = int(value)
        stats[key] = value
    return RunResult(workload=workload, config=config, ipc=ipc,
                     cycles=cycles, instructions=instructions, stats=stats)


def _shm_worker_main(conn, buf: mmap.mmap) -> None:
    """Forked worker loop: run cells, snapshot results into ``buf``."""
    tables: Dict[Tuple[str, ...], int] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "exit":
            break
        _op, task_id, spec = message
        try:
            result = _execute_spec(spec)
        except Exception as exc:        # noqa: BLE001 — surfaced per-cell
            conn.send(("error", task_id, CellError(
                label=spec.label, error=f"{type(exc).__name__}: {exc}",
                details=traceback.format_exc())))
            continue
        if result.metrics is not None:
            conn.send(("blob", task_id, result))
            continue
        keys = tuple(sorted(result.stats))
        mask = _snapshot_pack(buf, result, keys)
        if mask is None:
            conn.send(("blob", task_id, result))
            continue
        table_id = tables.get(keys)
        if table_id is None:
            table_id = len(tables)
            tables[keys] = table_id
            conn.send(("table", table_id, keys))
        conn.send(("done", task_id, result.workload, result.config,
                   table_id, mask))
    try:
        conn.close()
    except OSError:
        pass


class _ShmWorker:
    """One forked worker: pipe for control, mmap for result payloads."""

    def __init__(self, context, buffer_bytes: int) -> None:
        self.buf = mmap.mmap(-1, buffer_bytes)
        self.conn, child = context.Pipe()
        self.process = context.Process(target=_shm_worker_main,
                                       args=(child, self.buf), daemon=True)
        self.process.start()
        child.close()
        self.tables: Dict[int, Tuple[str, ...]] = {}
        self.handle: Optional["ShmHandle"] = None   # in-flight cell
        self.dead = False

    def kill(self) -> None:
        self.dead = True
        try:
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=2.0)
        finally:
            try:
                self.conn.close()
            except OSError:
                pass
            try:
                self.buf.close()
            except (BufferError, ValueError):
                pass

    def shutdown(self) -> None:
        if self.dead:
            return
        try:
            self.conn.send(("exit",))
        except (OSError, ValueError):
            pass
        self.process.join(timeout=2.0)
        self.kill()


class ShmHandle:
    """Handle for one cell in flight on a fork-server worker."""

    def __init__(self, worker: _ShmWorker, task_id: int,
                 label: str) -> None:
        self.label = label
        self.cancelled = False
        self._worker = worker
        self._task_id = task_id
        self._result = None
        self._finished = False

    def _drain(self) -> None:
        if self._finished:
            return
        worker = self._worker
        try:
            while worker.conn.poll():
                message = worker.conn.recv()
                kind = message[0]
                if kind == "table":
                    worker.tables[message[1]] = message[2]
                elif kind == "done":
                    _, _tid, workload, config, table_id, mask = message
                    self._settle(_snapshot_unpack(
                        worker.buf, worker.tables[table_id], mask,
                        workload, config))
                    return
                elif kind in ("blob", "error"):
                    self._settle(message[2])
                    return
        except (EOFError, OSError):
            if not worker.process.is_alive():
                worker.dead = True
                self._settle(CellError(
                    label=self.label,
                    error="cancelled" if self.cancelled
                    else "worker process died without reporting a result"))

    def _settle(self, value) -> None:
        self._result = value
        self._finished = True
        if self._worker.handle is self:
            self._worker.handle = None

    def poll(self) -> bool:
        self._drain()
        if self._finished:
            return True
        if not self._worker.process.is_alive():
            self._drain()                # catch a result racing the exit
            if not self._finished:
                self._worker.dead = True
                self._settle(CellError(
                    label=self.label,
                    error="cancelled" if self.cancelled
                    else "worker process died without reporting a result"))
        return self._finished

    def ticks(self) -> List[dict]:
        return []

    def result(self, timeout: Optional[float] = None):
        import time
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.poll():
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"{self.label}: still running")
            # Block on the control pipe rather than sleep-polling: a
            # worker death closes the pipe, so this wakes for both.
            wait = 0.05 if deadline is None else max(
                0.0, min(0.05, deadline - time.monotonic()))
            try:
                self._worker.conn.poll(wait)
            except (EOFError, OSError):
                pass
        return self._result

    def cancel(self) -> bool:
        if self._finished:
            return False
        self.cancelled = True
        self._worker.kill()
        self._settle(CellError(label=self.label, error="cancelled"))
        return True

    def close(self) -> None:
        if not self._finished:
            self.cancel()


class LocalShmBackend(ExecutionBackend):
    """Fork-server + shared-memory backend for low-overhead grids."""

    name = "local-shm"

    def __init__(self, *, jobs: Optional[int] = None,
                 buffer_bytes: int = DEFAULT_BUFFER_BYTES) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "the local-shm backend needs the 'fork' start method "
                "(anonymous shared mmaps are inherited, not pickled); "
                "use local-process on this platform")
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.buffer_bytes = buffer_bytes
        self._context = multiprocessing.get_context("fork")
        self._workers: List[_ShmWorker] = []
        self._next_task = 0
        self.fell_back_to_serial = False

    # --------------------------------------------------------- protocol --
    def capacity(self) -> int:
        return self.jobs

    def submit(self, spec: RunSpec):
        worker = self._idle_worker()
        self._next_task += 1
        handle = ShmHandle(worker, self._next_task, spec.label)
        worker.handle = handle
        try:
            worker.conn.send(("run", self._next_task, spec))
        except (OSError, ValueError):
            worker.dead = True
            handle._settle(CellError(
                label=spec.label,
                error="worker process died without reporting a result"))
        return handle

    def submit_task(self, func: Callable, item, *, label: str = "task"):
        # Generic tasks keep the dedicated-process contract (hard-kill
        # cancel); the snapshot path is for RunSpec cells only.
        return submit_detached(func, item, label=label)

    def tick(self) -> None:
        self._reap_dead()

    def merge_cache(self, cache) -> int:
        return 0                         # workers share the local cache

    def close(self) -> None:
        for worker in self._workers:
            worker.shutdown()
        self._workers = []

    # --------------------------------------------------------- internals --
    def _reap_dead(self) -> None:
        self._workers = [worker for worker in self._workers
                         if not worker.dead]

    def _idle_worker(self) -> _ShmWorker:
        self._reap_dead()
        for worker in self._workers:
            if worker.handle is None:
                return worker
        if len(self._workers) >= self.jobs:
            raise RuntimeError(
                f"local-shm backend over capacity ({self.jobs} workers, "
                f"all busy); respect capacity() when submitting")
        worker = _ShmWorker(self._context, self.buffer_bytes)
        self._workers.append(worker)
        return worker


register_backend("local-shm", LocalShmBackend)
