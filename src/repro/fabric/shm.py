"""The ``local-shm`` backend: fork-server workers + shared-memory results.

The pool backend pays per-cell serialization twice — the spec pickled
in, the whole ``RunResult`` (a stats dict of a few hundred entries)
pickled back out through a feeder-thread/queue stack.  This backend
keeps a set of long-lived *forked* workers, each with an anonymous
``mmap`` shared with the parent, and ships results as **compact stat
snapshots**: the worker packs ``ipc/cycles/instructions`` plus the stat
values as a raw float64 array straight into shared memory, and sends
only a tiny control tuple over the pipe.  Stat *keys* are interned: a
key table is transmitted once per distinct key set (a sweep has one per
IQ kind, not one per cell), then referenced by id.

Cell pipelining: the shared buffer is **double-buffered** — two
snapshot slots, used alternately — and each worker accepts up to
:data:`PIPELINE_DEPTH` cells at a time.  The driver queues the next
spec while the current cell is still computing, so a worker rolls
straight into its next cell without waiting for the parent to drain
the last snapshot; the parked result sits in the other slot until the
parent unpacks it.  Two slots are exactly enough because admission is
capped at two unsettled cells per worker and the parent consumes
results in pipe (FIFO) order: before a worker can receive the cell
that would produce snapshot ``k+2``, the parent has unpacked snapshot
``k`` from the slot being reused.

Bit-identity: the worker runs the same ``_execute_spec`` as every other
backend; integer-valued stats are flagged in a mask and restored to
``int`` on the parent side, so the reconstructed ``RunResult`` equals
the serial one field-for-field.  Cells a snapshot cannot carry
(``metrics`` time series, oversized stat sets) fall back to pickling
that one result over the pipe.

Requires the ``fork`` start method (the mmap is inherited, never
pickled); constructing the backend elsewhere raises
:class:`~repro.common.errors.ConfigurationError`.
"""

from __future__ import annotations

import mmap
import multiprocessing
import struct
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.fabric.base import ExecutionBackend, register_backend
from repro.fabric.cells import (CellError, RunSpec, _execute_spec,
                                default_jobs)
from repro.fabric.local import submit_detached
from repro.harness.runner import RunResult

#: Snapshot header: ipc (f64), cycles, instructions, value count.
_HEADER = struct.Struct("<dqqq")

#: Per-slot shared buffer; a stats dict would need ~32k entries to
#: overflow it, at which point the pipe fallback kicks in.
DEFAULT_BUFFER_BYTES = 256 * 1024

#: Snapshot slots per worker, and with them the per-worker admission
#: cap: one cell computing plus one parked, undrained result.
PIPELINE_DEPTH = 2


def _snapshot_pack(buf: mmap.mmap, offset: int, limit: int,
                   result: RunResult,
                   keys: Tuple[str, ...]) -> Optional[bytes]:
    """Pack ``result`` into ``buf`` at ``offset``; returns the int-mask,
    or None when the snapshot does not fit in ``limit`` bytes (caller
    falls back to the pipe)."""
    values = [result.stats[key] for key in keys]
    need = _HEADER.size + 8 * len(values)
    if need > limit:
        return None
    mask = bytearray((len(values) + 7) // 8)
    floats: List[float] = []
    for index, value in enumerate(values):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None                  # exotic stat value: pipe fallback
        if isinstance(value, int):
            if abs(value) > 2 ** 53:     # not exactly representable
                return None
            mask[index // 8] |= 1 << (index % 8)
        floats.append(float(value))
    _HEADER.pack_into(buf, offset, result.ipc, result.cycles,
                      result.instructions, len(floats))
    if floats:
        struct.pack_into(f"<{len(floats)}d", buf, offset + _HEADER.size,
                         *floats)
    return bytes(mask)


def _snapshot_unpack(buf: mmap.mmap, offset: int, keys: Tuple[str, ...],
                     mask: bytes, workload: str, config: str) -> RunResult:
    ipc, cycles, instructions, count = _HEADER.unpack_from(buf, offset)
    values = (struct.unpack_from(f"<{count}d", buf, offset + _HEADER.size)
              if count else ())
    stats = {}
    for index, (key, value) in enumerate(zip(keys, values)):
        if mask[index // 8] & (1 << (index % 8)):
            value = int(value)
        stats[key] = value
    return RunResult(workload=workload, config=config, ipc=ipc,
                     cycles=cycles, instructions=instructions, stats=stats)


def _shm_worker_main(conn, buf: mmap.mmap, slot_bytes: int) -> None:
    """Forked worker loop: run cells, snapshot results into ``buf``.

    Snapshots alternate between the slots (``snapshots %
    PIPELINE_DEPTH``); the parent's admission cap guarantees the slot
    being reused was drained (see the module docstring).  Specs queue
    in the pipe, so the next ``recv`` returns immediately when the
    parent submitted ahead.
    """
    tables: Dict[Tuple[str, ...], int] = {}
    snapshots = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "exit":
            break
        _op, task_id, spec = message
        try:
            result = _execute_spec(spec)
        except Exception as exc:        # noqa: BLE001 — surfaced per-cell
            conn.send(("error", task_id, CellError(
                label=spec.label, error=f"{type(exc).__name__}: {exc}",
                details=traceback.format_exc())))
            continue
        if result.metrics is not None:
            conn.send(("blob", task_id, result))
            continue
        keys = tuple(sorted(result.stats))
        slot = snapshots % PIPELINE_DEPTH
        mask = _snapshot_pack(buf, slot * slot_bytes, slot_bytes,
                              result, keys)
        if mask is None:
            conn.send(("blob", task_id, result))
            continue
        snapshots += 1
        table_id = tables.get(keys)
        if table_id is None:
            table_id = len(tables)
            tables[keys] = table_id
            conn.send(("table", table_id, keys))
        conn.send(("done", task_id, result.workload, result.config,
                   table_id, mask, slot))
    try:
        conn.close()
    except OSError:
        pass


class _ShmWorker:
    """One forked worker: pipe for control, mmap for result payloads."""

    def __init__(self, context, buffer_bytes: int) -> None:
        self.slot_bytes = buffer_bytes
        self.buf = mmap.mmap(-1, PIPELINE_DEPTH * buffer_bytes)
        self.conn, child = context.Pipe()
        self.process = context.Process(
            target=_shm_worker_main, args=(child, self.buf, buffer_bytes),
            daemon=True)
        self.process.start()
        child.close()
        self.tables: Dict[int, Tuple[str, ...]] = {}
        #: Unsettled handles in submission order (== pipe FIFO order);
        #: capped at PIPELINE_DEPTH by the backend's admission.
        self.pending: List["ShmHandle"] = []
        self.dead = False

    # ------------------------------------------------------ message pump --
    def _route(self, message) -> None:
        """Deliver one pipe message; results settle the oldest handle
        (per-task messages arrive in submission order)."""
        kind = message[0]
        if kind == "table":
            self.tables[message[1]] = message[2]
            return
        handle = self.pending[0]
        if kind == "done":
            _, _tid, workload, config, table_id, mask, slot = message
            handle._settle(_snapshot_unpack(
                self.buf, slot * self.slot_bytes, self.tables[table_id],
                mask, workload, config))
        elif kind in ("blob", "error"):
            handle._settle(message[2])

    def pump(self) -> None:
        """Drain queued messages, settling handles oldest-first; on
        worker death, fail whatever is still pending."""
        if self.dead:
            return
        try:
            while self.pending and self.conn.poll():
                self._route(self.conn.recv())
        except (EOFError, OSError):
            pass
        if not self.pending or self.process.is_alive():
            return
        try:                             # catch results racing the exit
            while self.pending and self.conn.poll():
                self._route(self.conn.recv())
        except (EOFError, OSError):
            pass
        self.dead = True
        for handle in list(self.pending):
            handle._settle(CellError(
                label=handle.label,
                error="cancelled" if handle.cancelled
                else "worker process died without reporting a result"))

    def kill(self) -> None:
        self.dead = True
        try:
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=2.0)
        finally:
            try:
                self.conn.close()
            except OSError:
                pass
            try:
                self.buf.close()
            except (BufferError, ValueError):
                pass

    def shutdown(self) -> None:
        if self.dead:
            return
        try:
            self.conn.send(("exit",))
        except (OSError, ValueError):
            pass
        self.process.join(timeout=2.0)
        self.kill()


class ShmHandle:
    """Handle for one cell in flight on a fork-server worker."""

    def __init__(self, worker: _ShmWorker, task_id: int,
                 label: str) -> None:
        self.label = label
        self.cancelled = False
        self._worker = worker
        self._task_id = task_id
        self._result = None
        self._finished = False

    def _settle(self, value) -> None:
        self._result = value
        self._finished = True
        if self in self._worker.pending:
            self._worker.pending.remove(self)

    def poll(self) -> bool:
        if not self._finished:
            self._worker.pump()
        return self._finished

    def ticks(self) -> List[dict]:
        return []

    def result(self, timeout: Optional[float] = None):
        import time
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.poll():
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"{self.label}: still running")
            # Block on the control pipe rather than sleep-polling: a
            # worker death closes the pipe, so this wakes for both.
            wait = 0.05 if deadline is None else max(
                0.0, min(0.05, deadline - time.monotonic()))
            try:
                self._worker.conn.poll(wait)
            except (EOFError, OSError):
                pass
        return self._result

    def cancel(self) -> bool:
        if self._finished:
            return False
        self.cancelled = True
        worker = self._worker
        worker.kill()
        # The hard kill takes any pipelined cell on the same worker
        # with it; those handles settle as worker deaths, not cancels.
        for other in list(worker.pending):
            if other is not self:
                other._settle(CellError(
                    label=other.label,
                    error="worker process died without reporting "
                          "a result"))
        self._settle(CellError(label=self.label, error="cancelled"))
        return True

    def close(self) -> None:
        if not self._finished:
            self.cancel()


class LocalShmBackend(ExecutionBackend):
    """Fork-server + shared-memory backend for low-overhead grids."""

    name = "local-shm"

    def __init__(self, *, jobs: Optional[int] = None,
                 buffer_bytes: int = DEFAULT_BUFFER_BYTES) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "the local-shm backend needs the 'fork' start method "
                "(anonymous shared mmaps are inherited, not pickled); "
                "use local-process on this platform")
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.buffer_bytes = buffer_bytes
        self._context = multiprocessing.get_context("fork")
        self._workers: List[_ShmWorker] = []
        self._next_task = 0
        self.fell_back_to_serial = False

    # --------------------------------------------------------- protocol --
    def capacity(self) -> int:
        # PIPELINE_DEPTH cells per worker: the driver queues the next
        # spec in the pipe while the current cell computes, so workers
        # never idle waiting for the parent to drain a snapshot.
        return self.jobs * PIPELINE_DEPTH

    def submit(self, spec: RunSpec):
        worker = self._available_worker()
        self._next_task += 1
        handle = ShmHandle(worker, self._next_task, spec.label)
        worker.pending.append(handle)
        try:
            worker.conn.send(("run", self._next_task, spec))
        except (OSError, ValueError):
            worker.dead = True
            for victim in list(worker.pending):
                victim._settle(CellError(
                    label=victim.label,
                    error="worker process died without reporting "
                          "a result"))
        return handle

    def submit_task(self, func: Callable, item, *, label: str = "task"):
        # Generic tasks keep the dedicated-process contract (hard-kill
        # cancel); the snapshot path is for RunSpec cells only.
        return submit_detached(func, item, label=label)

    def tick(self) -> None:
        for worker in self._workers:
            worker.pump()
        self._reap_dead()

    def merge_cache(self, cache) -> int:
        return 0                         # workers share the local cache

    def close(self) -> None:
        for worker in self._workers:
            worker.shutdown()
        self._workers = []

    # --------------------------------------------------------- internals --
    def _reap_dead(self) -> None:
        self._workers = [worker for worker in self._workers
                         if not worker.dead]

    def _available_worker(self) -> _ShmWorker:
        self._reap_dead()
        # Prefer an idle worker, then a fresh one; only pipeline a
        # second cell onto a busy worker once every worker has one.
        backlog = None
        for worker in self._workers:
            worker.pump()
            if worker.dead:
                continue
            if not worker.pending:
                return worker
            if backlog is None and len(worker.pending) < PIPELINE_DEPTH:
                backlog = worker
        if len(self._workers) < self.jobs:
            worker = _ShmWorker(self._context, self.buffer_bytes)
            self._workers.append(worker)
            return worker
        if backlog is not None:
            return backlog
        raise RuntimeError(
            f"local-shm backend over capacity ({self.jobs} workers x "
            f"{PIPELINE_DEPTH} cells, all busy); respect capacity() "
            f"when submitting")


register_backend("local-shm", LocalShmBackend)
