"""Cell primitives shared by every execution backend.

A *cell* is one independent simulation: a :class:`RunSpec` carries
everything a worker — local process, fork-server child, or a worker on
another machine — needs to reproduce it bit-identically.  This module
also owns the worker entry points (module-level, picklable, so they
survive the ``spawn`` start method) and the JSON wire form the ``ssh``
backend ships cells in.

Moved here from ``repro.harness.parallel`` when the execution layer
became the pluggable fabric; the old module re-exports these names.
"""

from __future__ import annotations

import dataclasses
import os
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Union

from repro.common.params import (BranchPredictorParams, CacheParams,
                                 IQParams, MemoryParams, ProcessorParams)
from repro.harness.runner import RunResult


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell: everything a worker needs to reproduce it."""

    workload: str
    params: ProcessorParams
    config_label: str = ""
    seed: int = 0                     # reserved for seeded workloads
    max_instructions: Optional[int] = None
    scale: int = 1
    max_cycles: int = 5_000_000
    warm_code: bool = True
    #: Optional :class:`repro.obs.MetricsConfig` (or interval int); a
    #: metered cell always simulates — the cache is never consulted,
    #: because the time series is part of the result.
    metrics: Optional[object] = None
    #: Trace-artifact destination for the async submit path (``.jsonl``
    #: streams JSONL, else Chrome JSON).  Like ``metrics``, a traced
    #: cell always simulates.
    trace_path: Optional[str] = None
    #: Heartbeat cadence (seconds) on the async submit path.
    progress_interval: float = 0.5

    def cache_kwargs(self) -> dict:
        return {"max_instructions": self.max_instructions,
                "scale": self.scale, "max_cycles": self.max_cycles,
                "warm_code": self.warm_code}

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.config_label or self.params.iq.kind}"


@dataclass
class CellError:
    """A cell whose worker raised; carries enough context to report it."""

    label: str
    error: str
    details: str = field(default="", repr=False)

    def __str__(self) -> str:
        return f"{self.label}: {self.error}"


CellResult = Union[RunResult, CellError]


def default_jobs() -> int:
    """Worker count when the caller does not specify one."""
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


# ----------------------------------------------------------- wire format --
def params_to_dict(params: ProcessorParams) -> dict:
    """JSON-ready form of a parameter tree (inverse of
    :func:`params_from_dict`)."""
    return dataclasses.asdict(params)


def params_from_dict(data: dict) -> ProcessorParams:
    """Rebuild a :class:`ProcessorParams` from :func:`params_to_dict`.

    Field-exact: both ends must run the same source version (the ``ssh``
    backend's hello handshake checks the source token), so an unknown
    field is a hard error rather than something to silently drop.
    """
    data = dict(data)
    data["iq"] = IQParams(**data["iq"])
    memory = dict(data["memory"])
    for level in ("l1i", "l1d", "l2"):
        memory[level] = CacheParams(**memory[level])
    data["memory"] = MemoryParams(**memory)
    data["branch"] = BranchPredictorParams(**data["branch"])
    return ProcessorParams(**data)


def spec_to_dict(spec: RunSpec) -> dict:
    """JSON wire form of a cell (``metrics`` is not serializable and is
    rejected by backends that ship cells off-host)."""
    return {"workload": spec.workload,
            "params": params_to_dict(spec.params),
            "config_label": spec.config_label,
            "seed": spec.seed,
            "max_instructions": spec.max_instructions,
            "scale": spec.scale,
            "max_cycles": spec.max_cycles,
            "warm_code": spec.warm_code,
            "trace_path": spec.trace_path,
            "progress_interval": spec.progress_interval}


def spec_from_dict(data: dict) -> RunSpec:
    data = dict(data)
    data["params"] = params_from_dict(data["params"])
    return RunSpec(**data)


def result_to_dict(result: RunResult) -> dict:
    return {"workload": result.workload, "config": result.config,
            "ipc": result.ipc, "cycles": result.cycles,
            "instructions": result.instructions, "stats": result.stats,
            "metrics": result.metrics}


def result_from_dict(data: dict) -> RunResult:
    return RunResult(workload=data["workload"], config=data["config"],
                     ipc=data["ipc"], cycles=data["cycles"],
                     instructions=data["instructions"],
                     stats=data.get("stats") or {},
                     metrics=data.get("metrics"))


# ------------------------------------------------------- worker functions --
def _execute_spec(spec: RunSpec) -> RunResult:
    # Imported lazily: this runs inside spawn-started workers, where the
    # cheapest import footprint wins.
    from repro import api
    return api.run(spec.params, spec.workload,
                   config_label=spec.config_label,
                   scale=spec.scale,
                   max_instructions=spec.max_instructions,
                   max_cycles=spec.max_cycles,
                   warm_code=spec.warm_code,
                   metrics=spec.metrics)


def _guarded_call(payload: Tuple[Callable, object, str]):
    """Run one task, converting any exception into a CellError record."""
    func, item, label = payload
    try:
        return func(item)
    except Exception as exc:            # noqa: BLE001 — surfaced per-cell
        return CellError(label=label,
                         error=f"{type(exc).__name__}: {exc}",
                         details=traceback.format_exc())


def _handle_worker(conn, func: Callable, item, label: str) -> None:
    """Entry point of a dedicated-process handle worker.

    ``func(item, emit)`` runs with ``emit(dict)`` streaming progress
    payloads back over the pipe; the final message is ``("done", value)``
    or ``("error", CellError)``.
    """
    def emit(payload: dict) -> None:
        try:
            conn.send(("tick", payload))
        except (OSError, ValueError):
            pass                         # parent gone; keep computing

    try:
        conn.send(("done", func(item, emit)))
    except Exception as exc:            # noqa: BLE001 — surfaced per-cell
        try:
            conn.send(("error", CellError(
                label=label, error=f"{type(exc).__name__}: {exc}",
                details=traceback.format_exc())))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


def _run_spec_task(spec: RunSpec, emit: Callable[[dict], None]):
    """Execute one RunSpec with heartbeat forwarding (async submit path).

    ``spec.trace_path``, when set, lands the run's event stream in that
    file (JSONL for ``.jsonl`` paths, Chrome trace JSON otherwise) — the
    artifact side-channel the job service serves back to clients.
    """
    from repro import api

    def tick(t) -> None:
        emit({"cycle": t.cycle, "committed": t.committed,
              "elapsed_seconds": round(t.elapsed_seconds, 3),
              "kcycles_per_sec": round(t.kcycles_per_sec, 3)})

    return api.run(spec.params, spec.workload,
                   config_label=spec.config_label,
                   scale=spec.scale,
                   max_instructions=spec.max_instructions,
                   max_cycles=spec.max_cycles,
                   warm_code=spec.warm_code,
                   metrics=spec.metrics,
                   trace=spec.trace_path or None,
                   progress=tick,
                   progress_interval=spec.progress_interval)


def relabel(result: RunResult, config_label: str) -> RunResult:
    """The same simulation under the display label the caller asked for."""
    if not config_label or result.config == config_label:
        return result
    return RunResult(workload=result.workload, config=config_label,
                     ipc=result.ipc, cycles=result.cycles,
                     instructions=result.instructions, stats=result.stats,
                     metrics=result.metrics)


def raise_on_errors(results, what: str) -> None:
    """Raise a RuntimeError summarizing any failed cells."""
    errors = [r for r in results if isinstance(r, CellError)]
    if not errors:
        return
    summary = "; ".join(str(e) for e in errors[:3])
    if len(errors) > 3:
        summary += f"; ... ({len(errors) - 3} more)"
    raise RuntimeError(f"{len(errors)} of {len(results)} {what} cells "
                       f"failed: {summary}")


#: Functions the remote worker may be asked to run by qualified name
#: (``module:function``).  Off-host task submission is restricted to
#: this allowlist — the wire protocol must never become an arbitrary
#: code-execution channel, even between trusting hosts.
REMOTE_TASKS = {
    "repro.service.jobs:execute_job",
}


def task_name(func: Callable) -> str:
    return f"{func.__module__}:{func.__qualname__}"


def resolve_remote_task(name: str) -> Callable:
    if name not in REMOTE_TASKS:
        raise ValueError(f"task {name!r} is not a registered remote task")
    module_name, func_name = name.split(":", 1)
    import importlib
    return getattr(importlib.import_module(module_name), func_name)
