"""The :class:`ExecutionBackend` protocol, registry, and config.

The fabric turns "how cells get executed" into a pluggable choice.  A
backend owns worker resources (a process pool, a set of fork-server
children, channels to other machines) and exposes one small surface::

    capacity()                      how many cells may be in flight
    submit(spec) -> handle          start one simulation cell
    submit_task(func, item) -> h    start one generic task (hard-kill
                                    cancellable — the job service path)
    tick()                          pump internal machinery (optional)
    cancel(handle)                  delegate to the handle's cancel
    merge_cache(cache) -> int       pull worker-side ResultCache entries
                                    back into a local cache
    close()                         release workers

Handles are duck-typed (see :mod:`repro.fabric.handles`).  Backends
register themselves by name; :func:`create_backend` resolves a spec
string like ``"local-shm"`` or ``"ssh:hosta,hostb"`` into an instance.

Every backend must be *bit-identical* to serial execution: a worker
computes exactly what ``repro.api.run`` would in-process.  The
conformance suite (``tests/fabric/test_conformance.py``) enforces this
for every registered backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.fabric.cells import RunSpec, default_jobs


class ExecutionBackend:
    """Base class / protocol for execution backends.

    Subclasses implement the worker mechanics; the driver in
    :mod:`repro.fabric.executor` owns caching, journaling, ordering,
    and retries none of this layer needs to know about.
    """

    #: Registry name ("local-process", "local-shm", "ssh", ...).
    name: str = ""

    def capacity(self) -> int:
        """Maximum useful number of in-flight cells."""
        raise NotImplementedError

    def submit(self, spec: RunSpec):
        """Start one simulation cell; returns a handle immediately."""
        raise NotImplementedError

    def submit_task(self, func: Callable, item, *, label: str = "task"):
        """Start ``func(item, emit)`` as a cancellable task.

        The contract the job service needs: cancellation is a hard kill
        of whatever is computing the task, not a cooperative flag.
        Off-host backends restrict ``func`` to the remote-task
        allowlist (:data:`repro.fabric.cells.REMOTE_TASKS`).
        """
        raise NotImplementedError

    def tick(self) -> None:
        """Pump internal machinery (respawn dead workers, drain IO)."""

    def cancel(self, handle) -> bool:
        return handle.cancel()

    def merge_cache(self, cache) -> int:
        """Merge worker-side ResultCache entries into ``cache``.

        Local backends share the caller's filesystem and have nothing
        to merge; multi-host backends pull what their workers computed
        (or already had cached) back to the submitting side.  Returns
        the number of entries merged.
        """
        return 0

    def close(self) -> None:
        """Release worker resources; the backend is dead afterwards."""

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------- registry
_REGISTRY: Dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(name: str,
                     factory: Callable[..., ExecutionBackend]) -> None:
    """Register a backend factory under ``name`` (idempotent override)."""
    _REGISTRY[name] = factory


def backend_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def parse_backend_spec(spec: str) -> Tuple[str, dict]:
    """Split a backend spec string into (name, options).

    ``"local-shm"`` -> ``("local-shm", {})``;
    ``"ssh:hosta,hostb"`` -> ``("ssh", {"hosts": ["hosta", "hostb"]})``.
    """
    name, _, arg = spec.partition(":")
    options: dict = {}
    if arg:
        if name == "ssh":
            options["hosts"] = [host.strip() for host in arg.split(",")
                                if host.strip()]
        else:
            raise ConfigurationError(
                f"backend {name!r} takes no ':' argument (got {arg!r})")
    return name, options


def create_backend(spec: str = "local-process", *,
                   jobs: Optional[int] = None,
                   **options) -> ExecutionBackend:
    """Instantiate a registered backend from its spec string."""
    # Imported here so registration has happened even when a caller
    # imports this module directly rather than the package.
    import repro.fabric  # noqa: F401  (registers the built-ins)
    name, parsed = parse_backend_spec(spec)
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; registered: "
            f"{', '.join(backend_names())}")
    parsed.update(options)
    return factory(jobs=jobs, **parsed)


# ------------------------------------------------------------------- config
@dataclass
class ExecutionConfig:
    """How a grid (or a single run) should execute.

    Collapses the old ``jobs=``/``cache=``/``progress=`` kwarg sprawl
    into one object every entry point accepts::

        grid = sweep.run(execution=ExecutionConfig(backend="local-shm",
                                                   jobs=4, cache=cache))

    ``backend`` is a spec string (``"local-process"``, ``"local-shm"``,
    ``"ssh:hosta,hostb"``) or a ready :class:`ExecutionBackend`
    instance.  ``jobs=None`` means the caller's historical default
    (1 for grids; ``REPRO_JOBS``/CPU count for backends created bare).
    ``journal`` is an optional path: the driver then records cell
    states (pending/running/done-in-cache) in an append-only JSONL
    journal so a killed sweep resumes without re-executing done cells
    (requires ``cache``).  ``options`` passes backend-specific knobs
    (e.g. ``hosts=[...]`` for ``ssh``).
    """

    backend: object = "local-process"
    jobs: Optional[int] = None
    cache: object = None
    progress: Optional[Callable] = None
    journal: Optional[object] = None
    options: dict = field(default_factory=dict)

    def resolve_jobs(self, default: int = 1) -> int:
        if self.jobs is None:
            return default
        return max(1, int(self.jobs))

    def make_backend(self, *, default_jobs_to: int = 1) -> ExecutionBackend:
        if isinstance(self.backend, ExecutionBackend):
            return self.backend
        return create_backend(self.backend or "local-process",
                              jobs=self.resolve_jobs(default_jobs_to),
                              **self.options)


#: Sentinel distinguishing "caller did not pass this deprecated kwarg".
UNSET = object()


def merge_legacy_kwargs(execution: Optional[ExecutionConfig], *,
                        where: str,
                        jobs=UNSET, cache=UNSET,
                        progress=UNSET) -> ExecutionConfig:
    """Fold deprecated ``jobs=``/``cache=``/``progress=`` kwargs into an
    :class:`ExecutionConfig`, warning once per call site.

    Mirrors the ``run_workload`` deprecation path: old kwargs keep
    working for one release, explicit ``execution=`` wins on conflict.
    """
    legacy = {name: value for name, value in
              (("jobs", jobs), ("cache", cache), ("progress", progress))
              if value is not UNSET}
    if legacy:
        import warnings
        names = ", ".join(f"{name}=" for name in sorted(legacy))
        warnings.warn(
            f"{where}: {names} {'are' if len(legacy) > 1 else 'is'} "
            f"deprecated; pass execution=ExecutionConfig(...) instead "
            f"(see docs/fabric.md)",
            DeprecationWarning, stacklevel=3)
    if execution is None:
        execution = ExecutionConfig()
        for name, value in legacy.items():
            setattr(execution, name, value)
    return execution


def default_jobs_hint() -> int:
    """Re-export of :func:`repro.fabric.cells.default_jobs` for callers
    that only import this module."""
    return default_jobs()
