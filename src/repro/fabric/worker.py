"""The fabric worker: ``python -m repro.fabric.worker [cache_dir]``.

One worker serves one channel of the ``ssh`` backend, speaking a JSONL
request/response protocol over stdin/stdout (stdout is reserved for the
protocol; ``sys.stdout`` is rebound to stderr so stray prints from
simulation code cannot corrupt it).

Protocol (one JSON object per line)::

    -> {"op": "hello", "token": <source token>, "pid": ...}   (worker)
    <- {"op": "run",  "id": N, "spec": {...}}
    -> {"op": "done", "id": N, "result": {...}, "cached": bool}
    <- {"op": "task", "id": N, "name": "mod:func", "item": ...}
    -> {"op": "tick", "id": N, "payload": {...}}              (repeated)
    -> {"op": "done", "id": N, "result": ...}
    <- {"op": "merge", "id": N}
    -> {"op": "merged", "id": N, "entries": [[key, result], ...]}
    <- {"op": "ping", "id": N}      -> {"op": "pong", "id": N}
    <- {"op": "exit"}               (or EOF)

The hello line carries the worker's source-version token; the parent
refuses a mismatched worker outright — that single check is what makes
the backend bit-identical (same sources compute the same cells) and
keeps cache keys aligned across hosts.

The worker keeps its own :class:`~repro.harness.cache.ResultCache`
(``cache_dir`` argv, else ``$REPRO_CACHE_DIR``, else the default) and
records every entry a session touched; the ``merge`` op ships those
entries back so the submitting host's cache absorbs remote work.
"""

from __future__ import annotations

import json
import os
import sys
import traceback
from typing import Dict, Optional

from repro.fabric.cells import (result_to_dict, resolve_remote_task,
                                spec_from_dict)
from repro.harness.cache import ResultCache, source_version_token


def _serve(proto_out, proto_in, cache_dir: Optional[str]) -> None:
    cache = ResultCache(cache_dir) if cache_dir else ResultCache()
    session: Dict[str, dict] = {}    # key -> result dict touched this session

    def send(message: dict) -> None:
        proto_out.write(json.dumps(message, sort_keys=True) + "\n")
        proto_out.flush()

    send({"op": "hello", "token": source_version_token(),
          "pid": os.getpid()})

    for line in proto_in:
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
            op = message["op"]
        except (ValueError, KeyError, TypeError):
            continue                    # torn/foreign line: skip, stay up
        if op == "exit":
            break
        request_id = message.get("id")
        if op == "ping":
            send({"op": "pong", "id": request_id})
        elif op == "merge":
            send({"op": "merged", "id": request_id,
                  "entries": [[key, result]
                              for key, result in session.items()]})
        elif op == "run":
            _serve_run(send, cache, session, request_id, message)
        elif op == "task":
            _serve_task(send, request_id, message)
        else:
            send({"op": "error", "id": request_id, "label": "protocol",
                  "error": f"unknown op {op!r}", "details": ""})


def _serve_run(send, cache: ResultCache, session: Dict[str, dict],
               request_id, message: dict) -> None:
    from repro.fabric.cells import _execute_spec
    try:
        spec = spec_from_dict(message["spec"])
    except Exception as exc:            # noqa: BLE001 — protocol surface
        send({"op": "error", "id": request_id, "label": "spec",
              "error": f"{type(exc).__name__}: {exc}",
              "details": traceback.format_exc()})
        return
    key = None
    if spec.trace_path is None:          # traced cells always simulate
        key = cache.key_for(spec.workload, spec.params,
                            **spec.cache_kwargs())
        hit = cache.get(key)
        if hit is not None:
            session[key] = result_to_dict(hit)
            send({"op": "done", "id": request_id,
                  "result": result_to_dict(hit), "cached": True})
            return
    try:
        result = _execute_spec(spec)
    except Exception as exc:            # noqa: BLE001 — surfaced per-cell
        send({"op": "error", "id": request_id, "label": spec.label,
              "error": f"{type(exc).__name__}: {exc}",
              "details": traceback.format_exc()})
        return
    payload = result_to_dict(result)
    if key is not None:
        cache.put(key, result)
        session[key] = payload
    send({"op": "done", "id": request_id, "result": payload,
          "cached": False})


def _serve_task(send, request_id, message: dict) -> None:
    try:
        func = resolve_remote_task(message["name"])
    except Exception as exc:            # noqa: BLE001 — protocol surface
        send({"op": "error", "id": request_id,
              "label": message.get("name", "task"),
              "error": f"{type(exc).__name__}: {exc}", "details": ""})
        return

    def emit(payload: dict) -> None:
        send({"op": "tick", "id": request_id, "payload": payload})

    try:
        value = func(message.get("item"), emit)
    except Exception as exc:            # noqa: BLE001 — surfaced per-task
        send({"op": "error", "id": request_id,
              "label": message.get("name", "task"),
              "error": f"{type(exc).__name__}: {exc}",
              "details": traceback.format_exc()})
        return
    send({"op": "done", "id": request_id, "result": value,
          "cached": False})


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    cache_dir = argv[0] if argv else None
    # Reserve the real stdout for the protocol; stray prints from
    # simulation code land on stderr instead of corrupting the stream.
    proto_out = os.fdopen(os.dup(sys.stdout.fileno()), "w")
    sys.stdout = sys.stderr
    try:
        _serve(proto_out, sys.stdin, cache_dir)
    except (BrokenPipeError, KeyboardInterrupt):
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
