"""repro.fabric — the pluggable execution layer.

Everything that used to be hard-wired into ``repro.harness.parallel``
(one spawn-safe process pool) is now a *fabric*: cells
(:class:`RunSpec`) are submitted to an :class:`ExecutionBackend` chosen
by name, and the :class:`Executor` driver layers caching, journaled
resume, and deterministic ordering on top of whichever backend runs the
work.

Built-in backends (see ``docs/fabric.md`` for the matrix):

``local-process``
    The default: a spawn-safe process pool, bit-identical to the old
    ``ParallelExecutor`` behaviour.
``local-shm``
    Fork-server workers returning compact stat snapshots through shared
    memory — lower per-cell overhead for wide, short-cell grids.
``ssh``
    Cells shipped as JSON to worker processes over stdin/stdout —
    ``ssh:hosta,hostb`` for real hosts, ``ssh:local`` for the
    transport-free form CI exercises — with worker ResultCache contents
    merged back afterwards.
"""

from repro.fabric.base import (ExecutionBackend, ExecutionConfig,
                               backend_names, create_backend,
                               merge_legacy_kwargs, parse_backend_spec,
                               register_backend)
from repro.fabric.cells import (CellError, CellResult, RunSpec,
                                default_jobs, raise_on_errors, relabel)
from repro.fabric.executor import Executor
from repro.fabric.handles import CellHandle, CompletedHandle, FutureHandle
from repro.fabric.journal import SweepJournal

# Importing the backend modules registers them.
from repro.fabric import local as _local            # noqa: F401,E402
from repro.fabric import shm as _shm                # noqa: F401,E402
from repro.fabric import ssh as _ssh                # noqa: F401,E402
from repro.fabric.local import LocalProcessBackend  # noqa: E402
from repro.fabric.shm import LocalShmBackend        # noqa: E402
from repro.fabric.ssh import SSHBackend             # noqa: E402

__all__ = [
    "CellError", "CellHandle", "CellResult", "CompletedHandle",
    "ExecutionBackend", "ExecutionConfig", "Executor", "FutureHandle",
    "LocalProcessBackend", "LocalShmBackend", "RunSpec", "SSHBackend",
    "SweepJournal", "backend_names", "create_backend", "default_jobs",
    "merge_legacy_kwargs", "parse_backend_spec", "raise_on_errors",
    "register_backend", "relabel",
]
