"""The ``ssh`` backend: cells over stdin/stdout subprocess channels.

Each *channel* is one worker process speaking the JSONL protocol of
:mod:`repro.fabric.worker`.  A host named ``"local"``/``"localhost"``
launches the worker directly (``python -m repro.fabric.worker``) — the
form CI exercises, identical wire path minus the ssh transport; any
other name goes through ``ssh -o BatchMode=yes <host>``, assuming the
remote login shell can ``python3 -m repro.fabric.worker`` (i.e. the
repo is on the remote ``PYTHONPATH``).

Guarantees:

* **Bit-identity** — the hello handshake carries the worker's
  source-version token; a mismatch is a hard
  :class:`~repro.common.errors.ConfigurationError`, so both ends always
  run the same sources (JSON round-trips Python floats exactly, so the
  wire adds no drift).
* **Cache merge** — each worker keeps its own
  :class:`~repro.harness.cache.ResultCache`; ``merge_cache`` pulls every
  entry the session touched back into the submitting side's store.
  Tokens match (see above), so the keys align.
* **No code channel** — off-host tasks are restricted to the
  :data:`~repro.fabric.cells.REMOTE_TASKS` allowlist; cells ship as
  data (:func:`~repro.fabric.cells.spec_to_dict`), never as pickles.

One cell is in flight per channel; ``hosts`` are replicated round-robin
up to ``jobs`` channels (``jobs=8`` over 2 hosts → 4 channels each).
A dead channel fails its in-flight cell (``CellError``) and is
respawned for the next submission; cancellation kills the channel's
worker process outright — the hard-kill contract ``submit_task`` needs.
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.fabric.base import ExecutionBackend, register_backend
from repro.fabric.cells import (REMOTE_TASKS, CellError, RunSpec,
                                result_from_dict, spec_to_dict, task_name)
from repro.fabric.local import submit_detached

#: Seconds to wait for a worker's hello line before declaring it dead.
HELLO_TIMEOUT = 30.0

_LOCAL_HOSTS = ("local", "localhost")


def _worker_command(host: str, cache_dir: Optional[str]) -> List[str]:
    if host in _LOCAL_HOSTS:
        command = [sys.executable, "-u", "-m", "repro.fabric.worker"]
    else:
        command = ["ssh", "-o", "BatchMode=yes", host,
                   "python3", "-u", "-m", "repro.fabric.worker"]
    if cache_dir:
        command.append(str(cache_dir))
    return command


def _local_env() -> dict:
    """Environment for a directly-launched worker: make sure the repro
    package the parent runs is the one the child imports."""
    env = os.environ.copy()
    import repro
    package_root = str(Path(repro.__file__).parent.parent)
    current = env.get("PYTHONPATH", "")
    if package_root not in current.split(os.pathsep):
        env["PYTHONPATH"] = (package_root + os.pathsep + current
                             if current else package_root)
    return env


class _Channel:
    """One worker subprocess: JSONL out over stdin, replies via a reader
    thread draining stdout into a queue."""

    def __init__(self, host: str, cache_dir: Optional[str],
                 expect_token: str) -> None:
        self.host = host
        self.dead = False
        self.handle: Optional["ChannelHandle"] = None
        self._next_id = 0
        self._pending: Dict[int, "ChannelHandle"] = {}
        self._queue: "queue.Queue" = queue.Queue()
        kwargs = {}
        if host in _LOCAL_HOSTS:
            kwargs["env"] = _local_env()
        self.process = subprocess.Popen(
            _worker_command(host, cache_dir),
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, **kwargs)
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()
        hello = self._wait_message(timeout=HELLO_TIMEOUT)
        if hello is None or hello.get("op") != "hello":
            self.kill()
            raise ConfigurationError(
                f"fabric worker on {host!r} did not complete the hello "
                f"handshake (is repro importable there?)")
        if hello.get("token") != expect_token:
            self.kill()
            raise ConfigurationError(
                f"fabric worker on {host!r} runs different repro sources "
                f"(token {hello.get('token')!r} != local {expect_token!r});"
                f" sync the checkout before running cells there")

    # ------------------------------------------------------------- wire --
    def _read_loop(self) -> None:
        try:
            for line in self.process.stdout:
                line = line.strip()
                if not line:
                    continue
                try:
                    self._queue.put(json.loads(line))
                except ValueError:
                    continue             # stray non-protocol output
        except (OSError, ValueError):
            pass
        self._queue.put(None)            # EOF marker

    def _wait_message(self, timeout: float) -> Optional[dict]:
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def send(self, message: dict) -> bool:
        try:
            self.process.stdin.write(json.dumps(message, sort_keys=True)
                                     + "\n")
            self.process.stdin.flush()
            return True
        except (OSError, ValueError):
            self._mark_dead()
            return False

    def request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # ---------------------------------------------------------- pumping --
    def pump(self) -> None:
        """Dispatch queued replies to their handles (non-blocking)."""
        if self.dead:
            return
        while True:
            try:
                message = self._queue.get_nowait()
            except queue.Empty:
                break
            if message is None:          # reader hit EOF: worker is gone
                self._mark_dead()
                break
            self._dispatch(message)
        if self.process.poll() is not None and not self._queue.qsize():
            self._mark_dead()

    def _dispatch(self, message: dict) -> None:
        handle = self._pending.get(message.get("id"))
        if handle is None:
            return
        op = message.get("op")
        if op == "tick":
            handle._ticks.append(message.get("payload") or {})
        elif op == "done":
            result = message.get("result")
            if isinstance(result, dict) and "ipc" in result:
                result = result_from_dict(result)
            handle._settle(result)
        elif op == "error":
            handle._settle(CellError(
                label=message.get("label") or handle.label,
                error=message.get("error", "remote error"),
                details=message.get("details", "")))

    def _mark_dead(self) -> None:
        if self.dead:
            return
        self.dead = True
        for handle in list(self._pending.values()):
            if not handle._finished:
                handle._settle(CellError(
                    label=handle.label,
                    error="cancelled" if handle.cancelled
                    else f"fabric worker on {self.host!r} died "
                         f"without reporting a result"))
        self._pending.clear()

    # ---------------------------------------------------------- control --
    def register(self, handle: "ChannelHandle", request_id: int) -> None:
        self._pending[request_id] = handle
        self.handle = handle

    def release(self, handle: "ChannelHandle") -> None:
        if self.handle is handle:
            self.handle = None
        self._pending = {rid: h for rid, h in self._pending.items()
                         if h is not handle}

    def merge_entries(self, timeout: float = 60.0) -> List:
        """Synchronously fetch the worker's session cache entries."""
        if self.dead:
            return []
        request_id = self.request_id()
        if not self.send({"op": "merge", "id": request_id}):
            return []
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            message = self._wait_message(timeout=0.1)
            if message is None:
                if self.process.poll() is not None:
                    self._mark_dead()
                    return []
                continue
            if (message.get("op") == "merged"
                    and message.get("id") == request_id):
                return message.get("entries") or []
            self._dispatch(message)
        return []

    def kill(self) -> None:
        self.dead = True
        try:
            self.process.kill()
        except OSError:
            pass
        self.process.wait(timeout=5.0)
        self._mark_dead()

    def shutdown(self) -> None:
        if not self.dead:
            self.send({"op": "exit"})
            try:
                self.process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                pass
        self.kill()


class ChannelHandle:
    """Handle for one op (cell or task) in flight on a channel."""

    def __init__(self, channel: _Channel, label: str) -> None:
        self.label = label
        self.cancelled = False
        self._channel = channel
        self._ticks: List[dict] = []
        self._result = None
        self._finished = False
        #: True when the worker answered from its own cache (telemetry).
        self.remote_cached = False

    def _settle(self, value) -> None:
        self._result = value
        self._finished = True
        self._channel.release(self)

    def poll(self) -> bool:
        if not self._finished:
            self._channel.pump()
        return self._finished

    def ticks(self) -> List[dict]:
        self.poll()
        out, self._ticks = self._ticks, []
        return out

    def result(self, timeout: Optional[float] = None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.poll():
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"{self.label}: still running")
            time.sleep(0.005)
        return self._result

    def cancel(self) -> bool:
        if self._finished:
            return False
        self.cancelled = True
        self._channel.kill()             # hard kill: the whole worker
        if not self._finished:
            self._settle(CellError(label=self.label, error="cancelled"))
        return True

    def close(self) -> None:
        if not self._finished:
            self.cancel()


class SSHBackend(ExecutionBackend):
    """Multi-host backend over stdin/stdout worker channels."""

    name = "ssh"

    def __init__(self, *, jobs: Optional[int] = None,
                 hosts: Optional[List[str]] = None,
                 worker_cache_dir: Optional[str] = None) -> None:
        self.hosts = list(hosts) if hosts else ["local"]
        self.jobs = (len(self.hosts) if jobs is None
                     else max(1, int(jobs)))
        self.worker_cache_dir = worker_cache_dir
        self._channels: List[_Channel] = []
        self._spawned = 0                # round-robin cursor over hosts
        self.fell_back_to_serial = False
        from repro.harness.cache import source_version_token
        self._token = source_version_token()

    # --------------------------------------------------------- protocol --
    def capacity(self) -> int:
        return self.jobs

    def submit(self, spec: RunSpec):
        if spec.metrics is not None:
            raise ConfigurationError(
                "metered cells (metrics=) cannot ship over the ssh "
                "backend; run them on a local backend")
        channel = self._idle_channel()
        handle = ChannelHandle(channel, spec.label)
        request_id = channel.request_id()
        channel.register(handle, request_id)
        if not channel.send({"op": "run", "id": request_id,
                             "spec": spec_to_dict(spec)}):
            pass                         # _mark_dead already settled it
        return handle

    def submit_task(self, func: Callable, item, *, label: str = "task"):
        name = task_name(func)
        if name not in REMOTE_TASKS:
            # Not shippable as data: run it on the submitting host with
            # the usual dedicated-process (hard-kill) contract.
            return submit_detached(func, item, label=label)
        channel = self._idle_channel()
        handle = ChannelHandle(channel, label)
        request_id = channel.request_id()
        channel.register(handle, request_id)
        channel.send({"op": "task", "id": request_id, "name": name,
                      "item": item})
        return handle

    def tick(self) -> None:
        for channel in self._channels:
            channel.pump()
        self._reap_dead()

    def merge_cache(self, cache) -> int:
        if cache is None or not getattr(cache, "enabled", False):
            return 0
        merged = 0
        for channel in self._channels:
            entries = channel.merge_entries()
            merged += cache.merge(
                (key, result_from_dict(result)) for key, result in entries)
        return merged

    def close(self) -> None:
        for channel in self._channels:
            channel.shutdown()
        self._channels = []

    # --------------------------------------------------------- internals --
    def _reap_dead(self) -> None:
        self._channels = [channel for channel in self._channels
                          if not channel.dead]

    def _idle_channel(self) -> _Channel:
        self._reap_dead()
        for channel in self._channels:
            channel.pump()
            if channel.handle is None and not channel.dead:
                return channel
        self._reap_dead()
        if len(self._channels) >= self.jobs:
            raise RuntimeError(
                f"ssh backend over capacity ({self.jobs} channels, all "
                f"busy); respect capacity() when submitting")
        host = self.hosts[self._spawned % len(self.hosts)]
        self._spawned += 1
        channel = _Channel(host, self.worker_cache_dir, self._token)
        self._channels.append(channel)
        return channel


register_backend("ssh", SSHBackend)
