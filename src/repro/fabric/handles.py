"""Cell handles: the uniform async surface every backend returns.

``ExecutionBackend.submit`` and ``submit_task`` hand back a handle the
driver (or the job service's event loop) polls.  All handles share one
duck-typed contract:

* ``poll()``    — non-blocking; True once a result (or failure) exists;
* ``ticks()``   — progress payloads accumulated since the last call;
* ``result(timeout=None)`` — the value, a :class:`CellError`, blocking
  up to ``timeout``;
* ``cancel()``  — stop the work (hard kill where the backend can);
* ``close()``   — release resources;
* ``label`` / ``cancelled`` attributes.

:class:`CellHandle` is the dedicated-process implementation (one task,
one worker process, pipe-streamed ticks, hard-kill cancel) that the job
service's timeouts rely on.  :class:`CompletedHandle` wraps a value that
already exists (serial execution, cache hits); :class:`FutureHandle`
wraps a process-pool future (cancel is best-effort there — a pool
worker cannot be killed per-task).
"""

from __future__ import annotations

from concurrent.futures import CancelledError, Future, TimeoutError as _FutureTimeout
from typing import List, Optional

from repro.fabric.cells import CellError


class CellHandle:
    """One asynchronously submitted task: poll, stream ticks, cancel.

    The task runs in a dedicated worker process whose lifetime the
    handle owns.  ``poll()`` is non-blocking and drains the progress
    pipe; ``cancel()`` terminates the worker outright (the result
    becomes a ``CellError`` marked cancelled).  Designed to be driven
    from an event loop — nothing here blocks beyond a bounded ``join``.
    """

    def __init__(self, label: str, process, conn) -> None:
        self.label = label
        self._process = process
        self._conn = conn
        self._result = None
        self._finished = False
        self.cancelled = False
        #: Drained-but-unconsumed progress payloads (see :meth:`ticks`).
        self._ticks: List[dict] = []

    # ---------------------------------------------------------- polling --
    def _drain(self) -> None:
        if self._finished:
            return
        try:
            while self._conn.poll():
                kind, payload = self._conn.recv()
                if kind == "tick":
                    self._ticks.append(payload)
                else:                    # "done" | "error"
                    self._result = payload
                    self._finish()
                    return
        except (EOFError, OSError):
            # Pipe closed without a result: the worker died (or was
            # cancelled); classify below.
            if self._result is None and not self._process.is_alive():
                self._result = CellError(
                    label=self.label,
                    error="cancelled" if self.cancelled
                    else "worker process died without reporting a result")
                self._finish()

    def _finish(self) -> None:
        self._finished = True
        try:
            self._conn.close()
        except OSError:
            pass
        self._process.join(timeout=5.0)

    def poll(self) -> bool:
        """Non-blocking: True once a result (or failure) is available."""
        self._drain()
        if self._finished:
            return True
        if not self._process.is_alive():
            # Worker exited; one last drain catches a result racing the
            # exit, otherwise record the death.
            try:
                if self._conn.poll():
                    self._drain()
            except (EOFError, OSError):
                pass
            if not self._finished:
                self._result = CellError(
                    label=self.label,
                    error="cancelled" if self.cancelled
                    else "worker process died without reporting a result")
                self._finish()
        return self._finished

    def ticks(self) -> List[dict]:
        """Progress payloads accumulated since the last call (drained)."""
        self._drain()
        out, self._ticks = self._ticks, []
        return out

    def result(self, timeout: Optional[float] = None):
        """Block (up to ``timeout``) for the result; raises on timeout."""
        if not self._finished:
            self._process.join(timeout)
            if not self.poll():
                raise TimeoutError(f"{self.label}: still running")
        return self._result

    # ------------------------------------------------------ cancellation --
    def cancel(self) -> bool:
        """Terminate the worker; True if this call performed the kill."""
        if self._finished:
            return False
        self.cancelled = True
        self._process.terminate()
        self._process.join(timeout=2.0)
        if self._process.is_alive():     # stuck in uninterruptible state
            self._process.kill()
            self._process.join(timeout=2.0)
        self._result = CellError(label=self.label, error="cancelled")
        self._finish()
        return True

    def close(self) -> None:
        if not self._finished:
            self.cancel()


class CompletedHandle:
    """A handle whose result already exists (serial fallback, cache)."""

    def __init__(self, label: str, value) -> None:
        self.label = label
        self.cancelled = False
        self._value = value

    def poll(self) -> bool:
        return True

    def ticks(self) -> List[dict]:
        return []

    def result(self, timeout: Optional[float] = None):
        return self._value

    def cancel(self) -> bool:
        return False

    def close(self) -> None:
        pass


class FutureHandle:
    """A handle over a :class:`concurrent.futures.Future` (pool cell).

    Cancellation is best-effort: a not-yet-started future is dropped,
    but a pool worker cannot be killed per-task.  Batch sweeps never
    need the hard kill; callers that do (the job service) use the
    dedicated-process ``submit_task`` path instead.
    """

    def __init__(self, label: str, future: Future) -> None:
        self.label = label
        self.cancelled = False
        self._future = future

    def poll(self) -> bool:
        return self._future.done()

    def ticks(self) -> List[dict]:
        return []

    def result(self, timeout: Optional[float] = None):
        try:
            return self._future.result(timeout)
        except _FutureTimeout:
            raise TimeoutError(f"{self.label}: still running") from None
        except CancelledError:
            return CellError(label=self.label, error="cancelled")
        except Exception as exc:        # noqa: BLE001 — per-cell surface
            return CellError(label=self.label,
                             error=f"{type(exc).__name__}: {exc}")

    def cancel(self) -> bool:
        self.cancelled = True
        return self._future.cancel()

    def close(self) -> None:
        pass
