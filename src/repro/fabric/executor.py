"""The fabric driver: cache, journal, and ordering over any backend.

:class:`Executor` is what grid-shaped callers (sweeps, experiments,
surrogate pruning, the CLI) use.  It owns everything backends should
not have to know about:

* **Caching** — each cell is looked up in the
  :class:`~repro.harness.cache.ResultCache` first; only cold cells are
  submitted, and every executed result is stored back.
* **Journaling** — with ``ExecutionConfig(journal=path)``, per-cell
  states (pending/running/done-in-cache) land in a
  :class:`~repro.fabric.journal.SweepJournal` so a killed campaign
  resumes exactly: journaled-done cells come back as cache hits and are
  never re-executed.
* **Ordering** — results return in input order regardless of worker
  completion order; a failed cell is a :class:`CellError` in its slot,
  never an exception out of the batch.
* **Backend lifetime** — a spec-string backend is created per batch and
  always closed; a live :class:`ExecutionBackend` instance passed in
  ``ExecutionConfig.backend`` is borrowed, not owned (the job service
  keeps one for its whole life).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.fabric.base import ExecutionBackend, ExecutionConfig
from repro.fabric.cells import (CellResult, RunSpec, _run_spec_task,
                                default_jobs, relabel)
from repro.fabric.journal import SweepJournal
from repro.fabric.local import run_task_batch, submit_detached
from repro.harness.runner import RunResult

#: Poll cadence of the submit/retire loop, seconds.
_POLL_SLEEP = 0.001


class Executor:
    """Cache-, journal-, and order-aware batch driver over a backend."""

    def __init__(self, execution: Optional[ExecutionConfig] = None) -> None:
        self.execution = execution if execution is not None \
            else ExecutionConfig()
        self.cache = self.execution.cache
        #: True when any batch degraded to in-process serial execution.
        self.fell_back_to_serial = False
        #: Worker-cache entries merged back by the last ``run_specs``.
        self.merged_entries = 0

    # ------------------------------------------------------------- specs --
    def run_specs(self, specs: Sequence[RunSpec],
                  progress: Optional[Callable[[int, int], None]] = None
                  ) -> List[CellResult]:
        """Run simulation cells; cache hits are free, order is input order.

        ``progress(done, total)`` counts *cold* cells only — cache hits
        are not progress, they are the absence of work.
        """
        progress = progress if progress is not None \
            else self.execution.progress
        journal = self._open_journal()
        results: List[Optional[CellResult]] = [None] * len(specs)
        cold: List[tuple] = []           # (index, spec, key)

        for index, spec in enumerate(specs):
            key = self._key_for(spec)
            hit = self.cache.get(key) if key is not None else None
            if hit is not None:
                results[index] = relabel(hit, spec.config_label)
                if journal is not None and not journal.done(key):
                    journal.record(key, "cached", spec.label)
                continue
            if journal is not None and key is not None \
                    and journal.states.get(key) != "pending":
                journal.record(key, "pending", spec.label)
            cold.append((index, spec, key))

        if cold:
            self._run_cold(cold, results, journal, progress)
        return results

    def _run_cold(self, cold, results, journal, progress) -> None:
        backend = self.execution.make_backend(
            default_jobs_to=default_jobs())
        owned = backend is not self.execution.backend
        pending = deque(cold)
        inflight: dict = {}              # handle -> (index, spec, key)
        retired = 0
        try:
            while pending or inflight:
                while pending and len(inflight) < backend.capacity():
                    index, spec, key = pending.popleft()
                    if journal is not None and key is not None:
                        journal.record(key, "running", spec.label)
                    inflight[backend.submit(spec)] = (index, spec, key)
                backend.tick()
                done = [handle for handle in inflight if handle.poll()]
                if not done:
                    time.sleep(_POLL_SLEEP)
                    continue
                for handle in done:
                    index, spec, key = inflight.pop(handle)
                    value = handle.result()
                    handle.close()
                    if isinstance(value, RunResult):
                        if key is not None:
                            self.cache.put(key, value)
                        value = relabel(value, spec.config_label)
                        if journal is not None and key is not None:
                            journal.record(key, "done")
                    elif journal is not None and key is not None:
                        journal.record(key, "failed")
                    results[index] = value
                    retired += 1
                    if progress is not None:
                        progress(retired, len(cold))
            self.merged_entries = backend.merge_cache(self.cache)
            self.fell_back_to_serial = self.fell_back_to_serial or bool(
                getattr(backend, "fell_back_to_serial", False))
        finally:
            if owned:
                backend.close()

    def _key_for(self, spec: RunSpec) -> Optional[str]:
        if self.cache is None or not hasattr(self.cache, "key_for"):
            return None
        if spec.metrics is not None or spec.trace_path is not None:
            return None                  # artifacts are part of the result
        return self.cache.key_for(spec.workload, spec.params,
                                  **spec.cache_kwargs())

    def _open_journal(self) -> Optional[SweepJournal]:
        target = self.execution.journal
        if target is None:
            return None
        if self.cache is None or not hasattr(self.cache, "key_for"):
            raise ConfigurationError(
                "journaled execution needs a ResultCache: the journal "
                "records cell states by cache key and resumes from "
                "cached results")
        if isinstance(target, SweepJournal):
            return target
        return SweepJournal(target)

    # --------------------------------------------------------------- map --
    def map(self, func: Callable, items: Sequence,
            labels: Optional[Sequence[str]] = None) -> List:
        """Apply ``func`` to every item in parallel, in input order.

        Generic callables cannot ship off-host, so this always runs on
        a local one-shot pool (serial fallback included) regardless of
        the configured backend.
        """
        results, fell_back = run_task_batch(
            func, items, labels,
            jobs=self.execution.resolve_jobs(default_jobs()),
            start_method=self.execution.options.get("start_method"),
            progress=self.execution.progress)
        self.fell_back_to_serial = self.fell_back_to_serial or fell_back
        return results

    # ------------------------------------------------------------ submit --
    def submit(self, func: Callable, item, *, label: str = "task"):
        """One cancellable task in a dedicated worker process."""
        return submit_detached(
            func, item, label=label,
            start_method=self.execution.options.get("start_method"))

    def submit_spec(self, spec: RunSpec):
        """One cell, asynchronously, with heartbeat ticks and hard-kill
        cancel (the job service's run path)."""
        return self.submit(_run_spec_task, spec, label=spec.label)

    def close(self) -> None:
        """Release a borrowed backend if the config carries an instance."""
        if isinstance(self.execution.backend, ExecutionBackend):
            self.execution.backend.close()
