"""Parametric synthetic kernel generator.

The eight named analogs in :mod:`repro.workloads.kernels` match the
paper's benchmarks; this module lets a user synthesize *arbitrary* points
in the workload space — memory intensity, access pattern, dependence
depth, branch predictability — to probe how an IQ design responds.

Example::

    from repro.workloads.synthetic import SyntheticProfile, build_synthetic

    profile = SyntheticProfile(name="hot-loop", iterations=2000,
                               loads_per_iteration=1, fp_chain_depth=6,
                               access_pattern="scatter",
                               footprint_words=1 << 15)
    program = build_synthetic(profile)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.isa import F, ProgramBuilder, R
from repro.isa.program import Program

ACCESS_PATTERNS = ("stream", "scatter", "chase")


@dataclass(frozen=True)
class SyntheticProfile:
    """Knobs describing one synthetic kernel."""

    name: str = "synthetic"
    iterations: int = 1000
    #: Memory behaviour.
    loads_per_iteration: int = 2
    stores_per_iteration: int = 1
    footprint_words: int = 8192          # 64 KB
    access_pattern: str = "stream"       # stream | scatter | chase
    #: Compute behaviour: a serial FP chain of this depth per iteration...
    fp_chain_depth: int = 4
    #: ...plus this many independent FP ops.
    fp_parallel_ops: int = 4
    int_ops: int = 2
    #: Branchiness: fraction of iterations taking a data-dependent branch
    #: with unpredictable direction (0.0 = perfectly predictable loop).
    hard_branch_bias: float = 0.0
    seed: int = 1

    def validate(self) -> None:
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if self.access_pattern not in ACCESS_PATTERNS:
            raise ConfigurationError(
                f"access_pattern must be one of {ACCESS_PATTERNS}")
        if self.footprint_words < 64:
            raise ConfigurationError("footprint must be at least 64 words")
        if self.footprint_words & (self.footprint_words - 1):
            raise ConfigurationError("footprint must be a power of two")
        if not 0.0 <= self.hard_branch_bias <= 1.0:
            raise ConfigurationError("hard_branch_bias must be in [0, 1]")
        if self.loads_per_iteration < 0 or self.stores_per_iteration < 0:
            raise ConfigurationError("memory op counts must be >= 0")
        if self.stores_per_iteration > 0 and self.loads_per_iteration == 0:
            raise ConfigurationError(
                "stores need at least one load-derived value")


def build_synthetic(profile: SyntheticProfile) -> Program:
    """Generate a deterministic kernel matching ``profile``."""
    profile.validate()
    rng = random.Random(profile.seed)
    b = ProgramBuilder(profile.name)
    words = profile.footprint_words
    data = b.alloc("data", words,
                   init=[1.0 + (i % 13) * 0.125 for i in range(words)])
    # Stores go to their own region so they can never corrupt the
    # pointer cycle used by the "chase" pattern.
    out = b.alloc("out", 256)

    needs_indices = profile.access_pattern == "scatter"
    indices = None
    if needs_indices:
        indices = b.alloc("idx", profile.iterations * max(
            1, profile.loads_per_iteration),
            init=[float(rng.randrange(words) * 8)
                  for _ in range(profile.iterations
                                 * max(1, profile.loads_per_iteration))])
    if profile.access_pattern == "chase":
        # A scrambled cycle of "pointers" through the footprint.
        order = list(range(1, words))
        rng.shuffle(order)
        order.append(0)
        previous = 0
        for node in order:
            b.set_word(data, previous, node * 8)
            previous = node
    hard = None
    if profile.hard_branch_bias > 0:
        hard = b.alloc("hard", profile.iterations,
                       init=[float(int(rng.random()
                                       < profile.hard_branch_bias
                                       and rng.random() < 0.5))
                             for _ in range(profile.iterations)])

    i, limit, addr, ptr = R(1), R(2), R(3), R(4)
    b.li(R(5), 3)
    b.cvtif(F(30), R(5))
    b.li(limit, profile.iterations)
    b.li(i, 0)
    b.li(ptr, 0)
    b.label("loop")

    loaded = []
    for load_index in range(profile.loads_per_iteration):
        reg = F(load_index % 8)
        if profile.access_pattern == "stream":
            b.addi(addr, i, load_index * (words // 4))
            b.andi(addr, addr, words - 1)
            b.slli(addr, addr, 3)
            b.fld(reg, addr, base=data)
        elif profile.access_pattern == "scatter":
            # Each load walks its own slice of the index array.
            b.addi(addr, i, load_index * profile.iterations)
            b.slli(addr, addr, 3)
            b.ld(R(6), addr, base=indices)
            b.fld(reg, R(6), base=data)
        else:                        # chase
            b.ld(ptr, ptr, base=data)
            b.cvtif(reg, ptr)
        loaded.append(reg)

    # Serial FP chain seeded by the first load (if any).
    chain_reg = F(10)
    seed = loaded[0] if loaded else F(30)
    b.fadd(chain_reg, seed, F(30))
    for depth in range(profile.fp_chain_depth - 1):
        if depth % 2:
            b.fadd(chain_reg, chain_reg, F(30))
        else:
            b.fmul(chain_reg, chain_reg, F(30))

    # Independent FP work.
    for op_index in range(profile.fp_parallel_ops):
        reg = F(16 + op_index % 8)
        if op_index % 2:
            b.fadd(reg, F(30), F(30))
        else:
            b.fmul(reg, F(30), F(30))

    for op_index in range(profile.int_ops):
        b.add(R(7 + op_index % 4), i, limit)

    for store_index in range(profile.stores_per_iteration):
        b.andi(addr, i, 255)
        b.slli(addr, addr, 3)
        b.fst(chain_reg, addr, base=out)

    if hard is not None:
        b.slli(addr, i, 3)
        b.ld(R(11), addr, base=hard)
        b.beq(R(11), R(0), "skip_hard")
        b.addi(R(12), R(12), 1)
        b.label("skip_hard")

    b.addi(i, i, 1)
    b.blt(i, limit, "loop")
    b.halt()
    return b.build()
