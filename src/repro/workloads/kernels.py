"""Synthetic analogs of the paper's SPEC CPU2000 benchmark subset.

SPEC binaries are proprietary and the paper's 100 M-instruction samples are
far beyond a Python simulator, so each benchmark is replaced by a kernel
whose *shape* — memory footprint and stride, miss behaviour, dependence
structure, branchiness — mimics the paper's characterization of that
benchmark (sections 5-6).  See DESIGN.md section 5 for the mapping table.

Every kernel is deterministic: pseudo-random access patterns are
precomputed at build time with a multiplicative hash.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict

from repro.isa import F, ProgramBuilder, R
from repro.isa.program import Program

#: Knuth's multiplicative hash constant, used for light scrambling of
#: table contents (not access patterns).
_HASH = 2654435761


def _scrambled(count: int, modulo: int, salt: int = 0) -> list:
    """Deterministic, well-mixed pseudo-random ints in [0, modulo).

    Seeded PRNG rather than a multiplicative hash: hash sequences over
    consecutive indices have stride-periodic low bits, which a local
    branch-history predictor learns — defeating the point of "random"
    branch and access patterns.
    """
    rng = random.Random(0xC0FFEE + salt)
    return [rng.randrange(modulo) for _ in range(count)]


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark analog: how to build it and how to run it."""

    name: str
    build: Callable[[int], Program]
    #: Dynamic-instruction budget at scale=1 (roughly).
    default_instructions: int
    #: True for the floating-point subset (ammp/applu/equake/mgrid/swim).
    is_fp: bool
    #: Pre-install the data segments in the L2 before measuring.
    warm_data: bool
    description: str


# --------------------------------------------------------------------- swim
def build_swim(scale: int = 1) -> Program:
    """Streaming 1-D shallow-water-style sweep.

    Paper: >90 % of swim's loads miss in L1, but only ~20 % reach the L2 —
    the rest are delayed hits on in-flight lines.  A stride-1 sweep over
    cold arrays gives exactly that profile: one true miss plus seven
    delayed hits per 64-byte line.
    """
    n = 3600 * scale                # elements, visited with stride 2
    b = ProgramBuilder("swim")
    u = b.alloc("u", n, init=[1.0 + (i % 7) * 0.25 for i in range(n)])
    v = b.alloc("v", n, init=[2.0 - (i % 5) * 0.125 for i in range(n)])
    i, limit, addr = R(1), R(2), R(3)
    b.li(R(4), 1)
    b.cvtif(F(10), R(4))            # c1 = 1.0
    b.li(R(5), 2)
    b.cvtif(F(11), R(5))            # c2 = 2.0
    b.li(limit, n)
    b.li(i, 0)
    b.label("loop")
    b.slli(addr, i, 3)
    b.fld(F(0), addr, base=u)
    b.fld(F(1), addr, base=v)
    # Two shallow consumer chains per point plus independent flux work:
    # the line-touch density is balanced so that bandwidth saturation
    # needs only a few hundred instructions in flight, as for real swim.
    b.fadd(F(3), F(0), F(1))        # u + v
    b.fmul(F(4), F(3), F(10))       # u'
    b.fst(F(4), addr, base=u)
    b.fmul(F(5), F(1), F(11))       # 2v
    b.fadd(F(6), F(5), F(0))
    b.fmul(F(12), F(10), F(11))     # independent flux chains
    b.fadd(F(13), F(12), F(10))
    b.fmul(F(14), F(13), F(11))
    b.fsub(F(15), F(11), F(10))
    b.fmul(F(16), F(15), F(15))
    b.fadd(F(17), F(16), F(12))
    b.addi(i, i, 2)
    b.blt(i, limit, "loop")
    b.halt()
    return b.build()


# -------------------------------------------------------------------- mgrid
def build_mgrid(scale: int = 1) -> Program:
    """Dense 1-D multigrid-style relaxation with deep per-point FP work.

    Paper: mgrid has low miss rates, very effective chain scheduling, and
    segment 0 dense with ready instructions.  Deep independent FP
    expression trees per point with a modest streaming footprint give the
    same texture.
    """
    n = 1400 * scale
    b = ProgramBuilder("mgrid")
    u = b.alloc("u", n + 2, init=[1.0 + (i % 9) * 0.0625
                                  for i in range(n + 2)])
    r = b.alloc("r", n + 2, init=[0.0] * (n + 2))
    i, limit, addr = R(1), R(2), R(3)
    b.li(R(4), 4)
    b.cvtif(F(10), R(4))            # 4.0
    b.li(R(5), 2)
    b.cvtif(F(11), R(5))            # 2.0
    b.li(limit, n)
    b.li(i, 1)
    b.label("loop")
    b.slli(addr, i, 3)
    b.fld(F(0), addr, -8, base=u)   # u[i-1]
    b.fld(F(1), addr, 0, base=u)    # u[i]
    b.fld(F(2), addr, 8, base=u)    # u[i+1]
    b.fadd(F(3), F(0), F(2))
    b.fmul(F(4), F(1), F(11))
    b.fsub(F(5), F(3), F(4))        # laplacian
    b.fmul(F(6), F(5), F(10))
    b.fadd(F(7), F(6), F(1))
    b.fmul(F(8), F(7), F(11))
    b.fadd(F(9), F(8), F(3))
    b.fmul(F(12), F(9), F(10))
    b.fadd(F(13), F(12), F(5))
    b.fst(F(13), addr, 0, base=r)
    b.addi(i, i, 1)
    b.blt(i, limit, "loop")
    b.halt()
    return b.build()


# -------------------------------------------------------------------- applu
def build_applu(scale: int = 1) -> Program:
    """Blocked SSOR-style solve: loop-carried recurrences over a cold
    streamed footprint.

    Paper: applu is L2-miss limited with long dependence chains; larger
    windows overlap the memory accesses feeding several concurrent
    recurrences.
    """
    n = 1100 * scale
    b = ProgramBuilder("applu")
    a = b.alloc("a", n, init=[0.001 * (1 + (i % 11)) for i in range(n)])
    c = b.alloc("c", n, init=[0.5 + (i % 3) * 0.125 for i in range(n)])
    out = b.alloc("out", n, init=[0.0] * n)
    i, limit, addr = R(1), R(2), R(3)
    b.li(R(4), 1)
    b.cvtif(F(20), R(4))
    # Four independent recurrence accumulators.
    for reg in (F(0), F(1), F(2), F(3)):
        b.cvtif(reg, R(4))
    b.li(limit, n)
    b.li(i, 0)
    b.label("loop")
    b.slli(addr, i, 3)
    b.fld(F(4), addr, base=a)
    b.fld(F(5), addr, base=c)
    # The multiplies are off the critical path; each recurrence carries
    # only a 2-cycle fadd per iteration, so a large window can overlap
    # the streamed loads feeding many iterations.
    b.fmul(F(6), F(4), F(5))
    b.fadd(F(0), F(0), F(6))        # recurrence 0
    b.fmul(F(7), F(4), F(20))
    b.fadd(F(1), F(1), F(7))        # recurrence 1
    b.fmul(F(8), F(5), F(20))
    b.fadd(F(2), F(2), F(8))        # recurrence 2
    b.fadd(F(9), F(6), F(7))
    b.fadd(F(3), F(3), F(9))        # recurrence 3
    # Independent block-solve work per point (off the critical path).
    b.fmul(F(10), F(6), F(8))
    b.fadd(F(11), F(10), F(9))
    b.fmul(F(12), F(11), F(4))
    b.fsub(F(13), F(12), F(7))
    b.fmul(F(14), F(13), F(5))
    b.fadd(F(15), F(14), F(10))
    b.fmul(F(16), F(15), F(20))
    b.fadd(F(17), F(16), F(12))
    b.fst(F(17), addr, base=out)
    b.addi(i, i, 1)
    b.blt(i, limit, "loop")
    b.halt()
    return b.build()


# ------------------------------------------------------------------- equake
def build_equake(scale: int = 1) -> Program:
    """Sparse matrix-vector product with indirection.

    Paper: equake's performance is limited by L2 misses on irregular
    accesses; a big window overlaps many of them.  Here: stride-1 index
    and value streams (cold) feed dependent scattered loads into a vector.
    """
    nnz = 1800 * scale
    vec_words = 8192            # 64 KB vector: L1-straddling, L2-resident
    b = ProgramBuilder("equake")
    col = b.alloc("col", nnz,
                  init=[float(x * 8) for x in _scrambled(nnz, vec_words)])
    val = b.alloc("val", nnz, init=[0.25 + (i % 13) * 0.0625
                                    for i in range(nnz)])
    vec = b.alloc("vec", vec_words, init=[1.0] * vec_words)
    acc = b.alloc("acc", 8, init=[0.0] * 8)
    i, limit, addr, idx = R(1), R(2), R(3), R(4)
    b.li(limit, nnz)
    b.li(i, 0)
    b.cvtif(F(0), R(0))             # sum = 0
    b.label("loop")
    b.slli(addr, i, 3)
    b.ld(idx, addr, base=col)       # column byte offset
    b.fld(F(1), addr, base=val)
    b.fld(F(2), idx, base=vec)      # dependent, scattered load
    b.fmul(F(3), F(1), F(2))
    b.fadd(F(0), F(0), F(3))
    b.addi(i, i, 1)
    b.blt(i, limit, "loop")
    b.fst(F(0), R(0), base=acc)
    b.halt()
    return b.build()


# --------------------------------------------------------------------- ammp
def build_ammp(scale: int = 1) -> Program:
    """Neighbor-list force computation with divides.

    Paper: ammp has high chain usage and queue occupancy but a fairly low
    miss rate.  Scattered gathers over an L2-resident particle array with
    an FP divide per interaction reproduce that: long-latency FP chains
    keep the queue full without being memory-bound.
    """
    pairs = 900 * scale
    particles = 131072          # 1 MB position array, accessed cold
    force_words = 8192          # 64 KB force array (warmed)
    b = ProgramBuilder("ammp")
    pa = b.alloc("pa", pairs,
                 init=[float(x * 8) for x in _scrambled(pairs, particles)])
    pb = b.alloc("pb", pairs,
                 init=[float(x * 8) for x in _scrambled(pairs, particles, 1)])
    pos = b.alloc("pos", particles,
                  init=[1.0 + (i % 17) * 0.25 for i in range(particles)])
    force = b.alloc("force", force_words, init=[0.0] * force_words)
    i, limit, addr, ia, ib, fi = R(1), R(2), R(3), R(4), R(5), R(12)
    b.li(R(6), 1)
    b.cvtif(F(10), R(6))            # 1.0
    b.li(R(7), 4)
    b.cvtif(F(11), R(7))            # epsilon = 4.0
    b.li(limit, pairs)
    b.li(i, 0)
    b.label("loop")
    b.slli(addr, i, 3)
    b.ld(ia, addr, base=pa)
    b.ld(ib, addr, base=pb)
    b.fld(F(0), ia, base=pos)       # scattered cold loads: main memory
    b.fld(F(1), ib, base=pos)
    # Lennard-Jones-style interaction: deep FP tree per pair.
    b.fsub(F(2), F(0), F(1))        # dx
    b.fmul(F(3), F(2), F(2))        # r2
    b.fadd(F(4), F(3), F(10))       # r2 + 1
    b.fmul(F(5), F(4), F(4))        # r4
    b.fmul(F(6), F(5), F(4))        # r6
    b.fmul(F(7), F(6), F(6))        # r12
    b.fdiv(F(8), F(11), F(6))       # eps / r6
    b.fdiv(F(9), F(10), F(7))       # 1 / r12
    b.fsub(F(13), F(9), F(8))       # LJ term
    b.fmul(F(14), F(13), F(2))      # fx = term * dx
    b.fmul(F(15), F(14), F(11))
    b.fadd(F(16), F(15), F(13))
    b.andi(fi, ia, force_words * 8 - 1)
    b.fld(F(17), fi, base=force)
    b.fadd(F(18), F(17), F(16))
    b.fst(F(18), fi, base=force)
    b.addi(i, i, 1)
    b.blt(i, limit, "loop")
    b.halt()
    return b.build()


# ------------------------------------------------------------------- vortex
def build_vortex(scale: int = 1) -> Program:
    """Hash-table object lookups: integer, mostly-hitting, low occupancy.

    Paper: vortex actively uses only a small fraction of the queue
    (<=136/512 entries) and benefits mostly from the bypass mechanism.
    """
    lookups = 1300 * scale
    table_words = 32768         # 256 KB: L2-resident object store
    b = ProgramBuilder("vortex")
    keys = b.alloc("keys", lookups,
                   init=[float(k) for k in _scrambled(lookups, 1 << 20)])
    # Each entry holds a byte-offset "pointer" to another entry, so
    # lookups chase one link, object-database style.
    table = b.alloc("table", table_words,
                    init=[float((((i + 3) * _HASH) >> 6) % table_words * 8)
                          for i in range(table_words)])
    hits = b.alloc("hits", 8, init=[0.0] * 8)
    i, limit, addr = R(1), R(2), R(3)
    key, h, bucket, obj, count = R(4), R(5), R(6), R(10), R(7)
    b.li(limit, lookups)
    b.li(i, 0)
    b.li(count, 0)
    b.li(R(8), _HASH % 65536)
    b.label("loop")
    b.slli(addr, i, 3)
    b.ld(key, addr, base=keys)
    # h = (key * HASH) masked into the table
    b.mul(h, key, R(8))
    b.srli(h, h, 5)
    b.andi(h, h, table_words - 1)
    b.slli(h, h, 3)
    b.ld(bucket, h, base=table)     # bucket head (scattered, L2 hit)
    b.ld(obj, bucket, base=table)   # chase one link (dependent load)
    b.slti(R(9), obj, 1)
    b.bne(R(9), R(0), "miss")       # object offsets are >= 1: predictable
    b.add(count, count, key)
    b.label("miss")
    b.addi(i, i, 1)
    b.blt(i, limit, "loop")
    b.st(count, R(0), base=hits)
    b.halt()
    return b.build()


# -------------------------------------------------------------------- twolf
def build_twolf(scale: int = 1) -> Program:
    """Placement cost evaluation: branchy integer code, small working set.

    Paper: twolf uses few queue entries, benefits modestly from larger
    IQs, and loses a little at very large sizes to the deeper pipeline.
    """
    moves = 1200 * scale
    cells = 1024                # 8 KB
    b = ProgramBuilder("twolf")
    xs = b.alloc("xs", cells,
                 init=[float(x) for x in _scrambled(cells, 512)])
    ys = b.alloc("ys", cells,
                 init=[float(x) for x in _scrambled(cells, 512, 3)])
    picks = b.alloc("picks", moves,
                    init=[float(x * 8) for x in _scrambled(moves, cells)])
    cost_seg = b.alloc("cost", 8, init=[0.0] * 8)
    i, limit, addr, pick = R(1), R(2), R(3), R(4)
    x, y, dx, dy, cost, best = R(5), R(6), R(7), R(8), R(9), R(10)
    b.li(limit, moves)
    b.li(i, 0)
    b.li(best, 400)
    b.li(cost, 0)
    b.label("loop")
    b.slli(addr, i, 3)
    b.ld(pick, addr, base=picks)
    b.ld(x, pick, base=xs)
    b.ld(y, pick, base=ys)
    b.sub(dx, x, y)
    b.mul(dy, dx, dx)
    b.slt(R(11), dy, best)
    b.beq(R(11), R(0), "reject")    # data-dependent: moderately hard
    b.add(cost, cost, dx)
    b.jmp("next")
    b.label("reject")
    b.addi(cost, cost, 1)
    b.label("next")
    b.addi(i, i, 1)
    b.blt(i, limit, "loop")
    b.st(cost, R(0), base=cost_seg)
    b.halt()
    return b.build()


# ---------------------------------------------------------------------- gcc
def build_gcc(scale: int = 1) -> Program:
    """Interpreter-style dispatch: hard branches, low ILP.

    Paper: gcc does not benefit from a larger IQ — misspeculation and low
    ILP dominate, and deeper pipelines hurt.  Hash-scrambled two-way
    dispatch on loaded opcodes defeats the branch predictor often enough
    to reproduce that profile.
    """
    ops = 1100 * scale
    b = ProgramBuilder("gcc")
    # Opcode mix: ~25% "odd" cases, arriving in no learnable order — the
    # dispatch branches mispredict at a gcc-like per-instruction rate.
    case_mix = (0, 0, 2, 2, 0, 1, 2, 3)
    code = b.alloc("code", ops,
                   init=[float(case_mix[x])
                         for x in _scrambled(ops, len(case_mix), 7)])
    out = b.alloc("out", 8, init=[0.0] * 8)
    i, limit, addr, op, acc = R(1), R(2), R(3), R(4), R(5)
    b.li(limit, ops)
    b.li(i, 0)
    b.li(acc, 0)
    b.label("loop")
    b.slli(addr, i, 3)
    b.ld(op, addr, base=code)
    b.andi(R(6), op, 1)
    b.beq(R(6), R(0), "even")       # ~50/50 scrambled: hard to predict
    b.andi(R(7), op, 2)
    b.beq(R(7), R(0), "one")
    b.sub(acc, acc, op)             # case 3
    b.jmp("next")
    b.label("one")
    b.add(acc, acc, op)             # case 1
    b.jmp("next")
    b.label("even")
    b.addi(acc, acc, 2)             # cases 0 and 2
    b.label("next")
    b.addi(i, i, 1)
    b.blt(i, limit, "loop")
    b.st(acc, R(0), base=out)
    b.halt()
    return b.build()


#: The benchmark registry, in the paper's (alphabetical) order.
WORKLOADS: Dict[str, WorkloadSpec] = {
    "ammp": WorkloadSpec("ammp", build_ammp, 21_000, True, False,
                         "neighbor-list forces: chains + divides"),
    "applu": WorkloadSpec("applu", build_applu, 25_000, True, False,
                          "recurrences over cold streamed arrays"),
    "equake": WorkloadSpec("equake", build_equake, 15_000, True, False,
                           "sparse matvec with indirection"),
    "gcc": WorkloadSpec("gcc", build_gcc, 11_000, False, True,
                        "interpreter dispatch: hard branches, low ILP"),
    "mgrid": WorkloadSpec("mgrid", build_mgrid, 22_000, True, True,
                          "dense relaxation: deep FP trees, few misses"),
    "swim": WorkloadSpec("swim", build_swim, 27_000, True, False,
                         "cold stride-1 streams: delayed-hit dominated"),
    "twolf": WorkloadSpec("twolf", build_twolf, 14_000, False, True,
                          "branchy placement cost, small working set"),
    "vortex": WorkloadSpec("vortex", build_vortex, 19_000, False, True,
                           "hash-table lookups: int, mostly hits"),
}

#: Paper's benchmark grouping.
FP_BENCHMARKS = tuple(sorted(name for name, spec in WORKLOADS.items()
                             if spec.is_fp))
INT_BENCHMARKS = tuple(sorted(name for name, spec in WORKLOADS.items()
                              if not spec.is_fp))
