"""Benchmark analogs of the paper's SPEC CPU2000 subset."""

from repro.workloads.kernels import (FP_BENCHMARKS, INT_BENCHMARKS, WORKLOADS,
                                     WorkloadSpec, build_ammp, build_applu,
                                     build_equake, build_gcc, build_mgrid,
                                     build_swim, build_twolf, build_vortex)
from repro.workloads.synthetic import (ACCESS_PATTERNS, SyntheticProfile,
                                       build_synthetic)

__all__ = [
    "ACCESS_PATTERNS", "FP_BENCHMARKS", "INT_BENCHMARKS", "SyntheticProfile",
    "WORKLOADS", "WorkloadSpec", "build_synthetic",
    "build_ammp", "build_applu", "build_equake", "build_gcc", "build_mgrid",
    "build_swim", "build_twolf", "build_vortex",
]
