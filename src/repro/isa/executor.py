"""Functional (architectural) simulator.

Executes a :class:`~repro.isa.program.Program` and yields the dynamic
instruction stream (:class:`~repro.isa.instruction.DynInst`).  The timing
model is trace-driven off this stream: register dependences, memory
addresses, and branch outcomes are all architecturally exact.

Arithmetic note: integer values are plain Python ints (no 64-bit wraparound)
— kernels in this repository never rely on overflow.  Shifts mask their
amount to 6 bits so a bad shift cannot explode memory.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.common.errors import ExecutionError
from repro.isa.instruction import DynInst, Instruction
from repro.isa.opcodes import NUM_REGS, WORD_BYTES, Opcode
from repro.isa.program import Program


class MachineState:
    """Architectural state: register file and flat data memory."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.regs: List[float] = [0] * NUM_REGS
        self.memory: List[float] = [0.0] * max(1, program.memory_words)
        for word, value in program.initial_data.items():
            if not 0 <= word < len(self.memory):
                raise ExecutionError(
                    f"initial data word {word} outside memory "
                    f"({len(self.memory)} words)")
            self.memory[word] = value
        self.pc = 0
        self.halted = False
        self.instruction_count = 0

    def read_reg(self, reg: int) -> float:
        return self.regs[reg]

    def write_reg(self, reg: Optional[int], value: float) -> None:
        if reg is None or reg == 0:   # r0 is hardwired to zero
            return
        self.regs[reg] = value

    def mem_word_index(self, byte_addr: int) -> int:
        if byte_addr % WORD_BYTES:
            raise ExecutionError(f"unaligned access at byte {byte_addr}")
        index = byte_addr // WORD_BYTES
        if not 0 <= index < len(self.memory):
            raise ExecutionError(
                f"access at byte {byte_addr} outside memory "
                f"({len(self.memory)} words)")
        return index

    def load(self, byte_addr: int) -> float:
        return self.memory[self.mem_word_index(byte_addr)]

    def store(self, byte_addr: int, value: float) -> None:
        self.memory[self.mem_word_index(byte_addr)] = value


def _branch_taken(opcode: Opcode, a: float, b: float) -> bool:
    if opcode is Opcode.BEQ:
        return a == b
    if opcode is Opcode.BNE:
        return a != b
    if opcode is Opcode.BLT:
        return a < b
    if opcode is Opcode.BGE:
        return a >= b
    if opcode is Opcode.BLE:
        return a <= b
    if opcode is Opcode.BGT:
        return a > b
    raise ExecutionError(f"not a branch opcode: {opcode}")


def _step(state: MachineState, inst: Instruction) -> DynInst:
    """Execute one instruction, mutate state, and return its DynInst."""
    opcode = inst.opcode
    regs = state.regs
    dyn = DynInst(seq=state.instruction_count, pc=state.pc, static=inst)
    next_pc = state.pc + 1

    if opcode in _INT_BINOPS:
        a, b = regs[inst.srcs[0]], regs[inst.srcs[1]]
        state.write_reg(inst.dest, _INT_BINOPS[opcode](int(a), int(b)))
    elif opcode in _INT_IMMOPS:
        a = regs[inst.srcs[0]]
        state.write_reg(inst.dest, _INT_IMMOPS[opcode](int(a), inst.imm))
    elif opcode in _FP_BINOPS:
        a, b = regs[inst.srcs[0]], regs[inst.srcs[1]]
        state.write_reg(inst.dest, _FP_BINOPS[opcode](float(a), float(b)))
    elif opcode is Opcode.FNEG:
        state.write_reg(inst.dest, -float(regs[inst.srcs[0]]))
    elif opcode is Opcode.FSQRT:
        value = float(regs[inst.srcs[0]])
        if value < 0:
            raise ExecutionError(f"fsqrt of negative value {value} at pc {state.pc}")
        state.write_reg(inst.dest, value ** 0.5)
    elif opcode is Opcode.CVTIF:
        state.write_reg(inst.dest, float(regs[inst.srcs[0]]))
    elif opcode is Opcode.CVTFI:
        state.write_reg(inst.dest, int(regs[inst.srcs[0]]))
    elif opcode is Opcode.FCMPLT:
        a, b = regs[inst.srcs[0]], regs[inst.srcs[1]]
        state.write_reg(inst.dest, 1 if float(a) < float(b) else 0)
    elif opcode in (Opcode.LD, Opcode.FLD):
        addr = int(regs[inst.srcs[0]]) + inst.imm
        dyn.mem_addr = addr
        state.write_reg(inst.dest, state.load(addr))
    elif opcode in (Opcode.ST, Opcode.FST):
        addr = int(regs[inst.srcs[0]]) + inst.imm
        dyn.mem_addr = addr
        state.store(addr, regs[inst.srcs[1]])
    elif inst.is_branch:
        taken = _branch_taken(opcode, regs[inst.srcs[0]], regs[inst.srcs[1]])
        dyn.taken = taken
        if taken:
            next_pc = inst.target          # validated by Program.validate
    elif opcode is Opcode.JMP:
        dyn.taken = True
        next_pc = inst.target
    elif opcode is Opcode.HALT:
        state.halted = True
    elif opcode is Opcode.NOP:
        pass
    else:
        raise ExecutionError(f"unimplemented opcode {opcode}")

    state.pc = next_pc
    state.instruction_count += 1
    dyn.next_pc = next_pc
    return dyn


_INT_BINOPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: a << (b & 63),
    Opcode.SRL: lambda a, b: a >> (b & 63),
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: lambda a, b: _int_div(a, b),
}

_INT_IMMOPS = {
    Opcode.ADDI: lambda a, imm: a + imm,
    Opcode.ANDI: lambda a, imm: a & imm,
    Opcode.ORI: lambda a, imm: a | imm,
    Opcode.SLLI: lambda a, imm: a << (imm & 63),
    Opcode.SRLI: lambda a, imm: a >> (imm & 63),
    Opcode.SLTI: lambda a, imm: 1 if a < imm else 0,
    Opcode.LUI: lambda a, imm: imm << 16,
}

_FP_BINOPS = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: _fp_div(a, b),
}


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _fp_div(a: float, b: float) -> float:
    if b == 0:
        raise ExecutionError("fp division by zero")
    return a / b


def step_instruction(state: MachineState, inst: Instruction) -> DynInst:
    """Execute one instruction against ``state`` (public single-step API).

    Used by the validation oracle to replay a retired-instruction stream
    against fresh architectural state; semantics are identical to
    :func:`execute`, one instruction at a time.
    """
    return _step(state, inst)


def execute(program: Program,
            max_instructions: Optional[int] = None) -> Iterator[DynInst]:
    """Yield the dynamic instruction stream of ``program``.

    Stops at the halt instruction (which is yielded) or after
    ``max_instructions`` dynamic instructions, whichever comes first.
    """
    state = MachineState(program)
    code = program.instructions
    limit = max_instructions if max_instructions is not None else float("inf")
    while not state.halted and state.instruction_count < limit:
        if not 0 <= state.pc < len(code):
            raise ExecutionError(f"pc {state.pc} fell off the program")
        yield _step(state, code[state.pc])


def run_functional(program: Program,
                   max_instructions: Optional[int] = None) -> MachineState:
    """Execute to completion and return the final architectural state."""
    state = MachineState(program)
    code = program.instructions
    limit = max_instructions if max_instructions is not None else float("inf")
    while not state.halted and state.instruction_count < limit:
        if not 0 <= state.pc < len(code):
            raise ExecutionError(f"pc {state.pc} fell off the program")
        _step(state, code[state.pc])
    return state
