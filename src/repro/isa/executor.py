"""Functional (architectural) simulator.

Executes a :class:`~repro.isa.program.Program` and yields the dynamic
instruction stream (:class:`~repro.isa.instruction.DynInst`).  The timing
model is trace-driven off this stream: register dependences, memory
addresses, and branch outcomes are all architecturally exact.

Arithmetic note: integer values are plain Python ints (no 64-bit wraparound)
— kernels in this repository never rely on overflow.  Shifts mask their
amount to 6 bits so a bad shift cannot explode memory.

Numeric representation: registers and memory words hold plain Python
numbers, and the *type* of every cell is deterministic — integer opcodes
always write ``int`` (operands are coerced with ``int()``), floating-point
opcodes always write ``float``, and uninitialized cells are the integer
``0`` in both the register file and memory.  ``Program.initial_data``
values are stored exactly as the workload builder provided them.  This
type-stability is load-bearing for the sampling subsystem: architectural
checkpoints serialize state as canonical JSON, and a byte-stable encoding
requires int-ness/float-ness of every cell to be reproducible
(``0`` and ``0.0`` compare equal but serialize differently).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from repro.common.errors import ExecutionError
from repro.isa.instruction import DynInst, Instruction
from repro.isa.opcodes import NUM_REGS, WORD_BYTES, Opcode
from repro.isa.program import Program

#: One architectural word: ``int`` from integer ops, ``float`` from FP ops.
Value = Union[int, float]


class MachineState:
    """Architectural state: register file, flat data memory, and the
    execution cursor (pc / halt flag / dynamic-instruction index).

    The cursor lives here so a state can be snapshotted mid-stream and
    execution resumed from the snapshot (see :meth:`snapshot`,
    :meth:`restore`, and :func:`execute_from`).
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.regs: List[Value] = [0] * NUM_REGS
        self.memory: List[Value] = [0] * max(1, program.memory_words)
        for word, value in program.initial_data.items():
            if not 0 <= word < len(self.memory):
                raise ExecutionError(
                    f"initial data word {word} outside memory "
                    f"({len(self.memory)} words)")
            self.memory[word] = value
        self.pc = 0
        self.halted = False
        self.instruction_count = 0

    def read_reg(self, reg: int) -> Value:
        return self.regs[reg]

    def write_reg(self, reg: Optional[int], value: Value) -> None:
        if reg is None or reg == 0:   # r0 is hardwired to zero
            return
        self.regs[reg] = value

    def mem_word_index(self, byte_addr: int) -> int:
        if byte_addr % WORD_BYTES:
            raise ExecutionError(f"unaligned access at byte {byte_addr}")
        index = byte_addr // WORD_BYTES
        if not 0 <= index < len(self.memory):
            raise ExecutionError(
                f"access at byte {byte_addr} outside memory "
                f"({len(self.memory)} words)")
        return index

    def load(self, byte_addr: int) -> Value:
        return self.memory[self.mem_word_index(byte_addr)]

    def store(self, byte_addr: int, value: Value) -> None:
        self.memory[self.mem_word_index(byte_addr)] = value

    # ------------------------------------------------- snapshot / restore --
    def snapshot(self) -> Dict[str, object]:
        """Plain-data capture of the architectural state.

        The result is JSON-serializable and, thanks to the type-stable
        numeric representation (module docstring), two snapshots of the
        same execution point always encode to identical bytes.
        """
        return {
            "pc": self.pc,
            "halted": self.halted,
            "instruction_count": self.instruction_count,
            "regs": list(self.regs),
            "memory": list(self.memory),
        }

    @classmethod
    def restore(cls, program: Program, snap: Dict[str, object]) -> "MachineState":
        """Rebuild a state captured by :meth:`snapshot` against ``program``."""
        state = cls.__new__(cls)
        state.program = program
        state.regs = list(snap["regs"])
        state.memory = list(snap["memory"])
        if len(state.regs) != NUM_REGS:
            raise ExecutionError(
                f"snapshot has {len(state.regs)} registers, need {NUM_REGS}")
        state.pc = snap["pc"]
        state.halted = snap["halted"]
        state.instruction_count = snap["instruction_count"]
        return state


def _branch_taken(opcode: Opcode, a: float, b: float) -> bool:
    if opcode is Opcode.BEQ:
        return a == b
    if opcode is Opcode.BNE:
        return a != b
    if opcode is Opcode.BLT:
        return a < b
    if opcode is Opcode.BGE:
        return a >= b
    if opcode is Opcode.BLE:
        return a <= b
    if opcode is Opcode.BGT:
        return a > b
    raise ExecutionError(f"not a branch opcode: {opcode}")


def _step(state: MachineState, inst: Instruction) -> DynInst:
    """Execute one instruction, mutate state, and return its DynInst."""
    opcode = inst.opcode
    regs = state.regs
    srcs = inst.srcs
    # write_reg, inlined: `if dest` skips both None and the hardwired r0.
    dest = inst.dest
    dyn = DynInst(state.instruction_count, state.pc, inst)
    next_pc = state.pc + 1

    # Operation tables are keyed by opcode *value* (a plain string with a
    # cached hash): Enum.__hash__ is a Python-level call and this lookup
    # runs once per simulated instruction (``opv`` is the precomputed
    # mirror on the static instruction — Enum.value is itself a
    # descriptor call).
    opv = inst.opv
    fn = _INT_BINOPS_V.get(opv)
    if fn is not None:
        value = fn(int(regs[srcs[0]]), int(regs[srcs[1]]))
        if dest:
            regs[dest] = value
    elif (fn := _INT_IMMOPS_V.get(opv)) is not None:
        value = fn(int(regs[srcs[0]]), inst.imm)
        if dest:
            regs[dest] = value
    elif (fn := _FP_BINOPS_V.get(opv)) is not None:
        value = fn(float(regs[srcs[0]]), float(regs[srcs[1]]))
        if dest:
            regs[dest] = value
    elif opcode is Opcode.FNEG:
        value = -float(regs[srcs[0]])
        if dest:
            regs[dest] = value
    elif opcode is Opcode.FSQRT:
        value = float(regs[srcs[0]])
        if value < 0:
            raise ExecutionError(f"fsqrt of negative value {value} at pc {state.pc}")
        if dest:
            regs[dest] = value ** 0.5
    elif opcode is Opcode.CVTIF:
        value = float(regs[srcs[0]])
        if dest:
            regs[dest] = value
    elif opcode is Opcode.CVTFI:
        value = int(regs[srcs[0]])
        if dest:
            regs[dest] = value
    elif opcode is Opcode.FCMPLT:
        value = 1 if float(regs[srcs[0]]) < float(regs[srcs[1]]) else 0
        if dest:
            regs[dest] = value
    elif opcode in (Opcode.LD, Opcode.FLD):
        addr = int(regs[srcs[0]]) + inst.imm
        dyn.mem_addr = addr
        if dest:
            regs[dest] = state.load(addr)
        else:
            state.load(addr)
    elif opcode in (Opcode.ST, Opcode.FST):
        addr = int(regs[srcs[0]]) + inst.imm
        dyn.mem_addr = addr
        state.store(addr, regs[srcs[1]])
    elif inst.is_branch:
        taken = _branch_taken(opcode, regs[srcs[0]], regs[srcs[1]])
        dyn.taken = taken
        if taken:
            next_pc = inst.target          # validated by Program.validate
    elif opcode is Opcode.JMP:
        dyn.taken = True
        next_pc = inst.target
    elif opcode is Opcode.HALT:
        state.halted = True
    elif opcode is Opcode.NOP:
        pass
    else:
        raise ExecutionError(f"unimplemented opcode {opcode}")

    state.pc = next_pc
    state.instruction_count += 1
    dyn.next_pc = next_pc
    return dyn


_INT_BINOPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: a << (b & 63),
    Opcode.SRL: lambda a, b: a >> (b & 63),
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: lambda a, b: _int_div(a, b),
}

_INT_IMMOPS = {
    Opcode.ADDI: lambda a, imm: a + imm,
    Opcode.ANDI: lambda a, imm: a & imm,
    Opcode.ORI: lambda a, imm: a | imm,
    Opcode.SLLI: lambda a, imm: a << (imm & 63),
    Opcode.SRLI: lambda a, imm: a >> (imm & 63),
    Opcode.SLTI: lambda a, imm: 1 if a < imm else 0,
    Opcode.LUI: lambda a, imm: imm << 16,
}

_FP_BINOPS = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: _fp_div(a, b),
}

#: Value-keyed mirrors used by the _step hot path (see the note there).
_INT_BINOPS_V = {op.value: fn for op, fn in _INT_BINOPS.items()}
_INT_IMMOPS_V = {op.value: fn for op, fn in _INT_IMMOPS.items()}
_FP_BINOPS_V = {op.value: fn for op, fn in _FP_BINOPS.items()}


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _fp_div(a: float, b: float) -> float:
    if b == 0:
        raise ExecutionError("fp division by zero")
    return a / b


def step_instruction(state: MachineState, inst: Instruction) -> DynInst:
    """Execute one instruction against ``state`` (public single-step API).

    Used by the validation oracle to replay a retired-instruction stream
    against fresh architectural state; semantics are identical to
    :func:`execute`, one instruction at a time.
    """
    return _step(state, inst)


def execute_from(state: MachineState,
                 max_instructions: Optional[int] = None) -> Iterator[DynInst]:
    """Yield the dynamic stream of ``state``'s program, continuing from
    wherever ``state`` currently stands.

    ``max_instructions`` is an *absolute* dynamic-instruction index (the
    same axis as ``state.instruction_count``), so resuming a snapshot taken
    at index K with ``max_instructions=N`` yields exactly the instructions
    an uninterrupted ``execute(program, max_instructions=N)`` would have
    yielded from index K on.  ``state`` is mutated in place.
    """
    code = state.program.instructions
    limit = max_instructions if max_instructions is not None else float("inf")
    while not state.halted and state.instruction_count < limit:
        if not 0 <= state.pc < len(code):
            raise ExecutionError(f"pc {state.pc} fell off the program")
        yield _step(state, code[state.pc])


def execute(program: Program,
            max_instructions: Optional[int] = None) -> Iterator[DynInst]:
    """Yield the dynamic instruction stream of ``program``.

    Stops at the halt instruction (which is yielded) or after
    ``max_instructions`` dynamic instructions, whichever comes first.
    """
    return execute_from(MachineState(program), max_instructions)


def run_functional(program: Program,
                   max_instructions: Optional[int] = None) -> MachineState:
    """Execute to completion and return the final architectural state."""
    state = MachineState(program)
    for _ in execute_from(state, max_instructions):
        pass
    return state
