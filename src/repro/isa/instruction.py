"""Static and dynamic instruction representations.

A :class:`Instruction` is one line of a program (static).  The functional
simulator turns these into :class:`DynInst` objects — the dynamic stream the
timing model consumes.  A ``DynInst`` carries everything the timing model
needs: true register sources, the memory address (for loads/stores), and the
resolved branch outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import OpClass, Opcode, OpInfo, op_info
from repro.isa.registers import reg_name


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction.

    ``dest`` and ``srcs`` are architected register indices (flat space; see
    :mod:`repro.isa.registers`).  ``imm`` is the immediate operand (also the
    load/store displacement).  ``target`` is the branch/jump target as an
    instruction index, resolved from a label by the builder.
    """

    opcode: Opcode
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: int = 0
    target: Optional[int] = None
    # Opcode metadata, precomputed once: the timing model consults these
    # predicates millions of times per run, so they are plain attributes
    # rather than properties.  (init=False fields on a frozen dataclass
    # are filled in __post_init__ via object.__setattr__.)
    info: OpInfo = field(init=False, repr=False, compare=False)
    op_class: OpClass = field(init=False, repr=False, compare=False)
    latency: int = field(init=False, repr=False, compare=False)
    # The opcode's string value: Enum.value is a DynamicClassAttribute
    # (a Python-level descriptor call), so the executor's per-instruction
    # table lookups read this plain attribute instead.
    opv: str = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    is_mem: bool = field(init=False, repr=False, compare=False)
    is_branch: bool = field(init=False, repr=False, compare=False)
    is_control: bool = field(init=False, repr=False, compare=False)
    is_halt: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        info = op_info(self.opcode)
        op_class = info.op_class
        object.__setattr__(self, "info", info)
        object.__setattr__(self, "op_class", op_class)
        object.__setattr__(self, "latency", info.latency)
        object.__setattr__(self, "opv", self.opcode.value)
        object.__setattr__(self, "is_load", op_class is OpClass.LOAD)
        object.__setattr__(self, "is_store", op_class is OpClass.STORE)
        object.__setattr__(self, "is_mem",
                           op_class in (OpClass.LOAD, OpClass.STORE))
        object.__setattr__(self, "is_branch", op_class is OpClass.BRANCH)
        object.__setattr__(self, "is_control",
                           op_class in (OpClass.BRANCH, OpClass.JUMP))
        object.__setattr__(self, "is_halt", op_class is OpClass.HALT)

    # frozen + slots breaks default pickling on Python 3.10 (the generated
    # __setstate__ path calls setattr, which a frozen class rejects); spell
    # the state protocol out so programs can cross process-pool boundaries.
    def __getstate__(self):
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def __str__(self) -> str:
        parts = [self.opcode.value]
        operands = []
        if self.dest is not None:
            operands.append(reg_name(self.dest))
        operands.extend(reg_name(src) for src in self.srcs)
        if self.imm:
            operands.append(str(self.imm))
        if self.target is not None:
            operands.append(f"@{self.target}")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)


@dataclass(slots=True)
class DynInst:
    """One dynamic instruction as produced by the functional simulator.

    The timing model annotates it with scheduling state as it flows through
    the pipeline; the functional fields (``mem_addr``, ``taken``, ``next_pc``)
    are fixed at creation.
    """

    seq: int                       # dynamic sequence number (program order)
    pc: int                        # static instruction index
    static: Instruction
    thread: int = 0                # hardware thread (SMT), 0 when single
    cluster: int = 0               # execution cluster, 0 when unclustered
    mem_addr: Optional[int] = None  # byte address for loads/stores
    taken: bool = False             # resolved branch direction
    next_pc: int = 0                # PC of the next dynamic instruction

    # --- timing-model scheduling state (set by the pipeline) ---
    rob_index: int = -1
    fetched_cycle: int = -1
    dispatched_cycle: int = -1
    issued_cycle: int = -1
    completed_cycle: int = -1
    committed_cycle: int = -1
    squashed: bool = False
    # Branch-prediction outcome, filled by the fetch stage.
    predicted_taken: Optional[bool] = None
    mispredicted: bool = False
    # Memory outcome, filled by the data cache ("l1", "l2", "mem", "delayed",
    # "forward") once the access completes.
    mem_level: Optional[str] = None
    # --- wakeup plumbing ---
    # Cycle at which this instruction's destination value is available to
    # consumers; None until known (fixed-latency ops learn it at issue,
    # loads at data return).
    value_ready_cycle: Optional[int] = None
    # Waiters notified when value_ready_cycle becomes known.  Consumers
    # dispatched before the producer issues register here: either a
    # callable invoked with the ready cycle, or a (queue, entry, index)
    # operand-wakeup triple (see InstructionQueue._subscribe).
    waiters: list = field(default_factory=list)

    def set_value_ready(self, cycle: int) -> None:
        """Record when the destination value becomes available and notify
        all registered waiters."""
        self.value_ready_cycle = cycle
        waiters, self.waiters = self.waiters, []
        for waiter in waiters:
            if type(waiter) is tuple:
                queue, entry, index = waiter
                if entry.source_known(index, cycle):
                    queue.on_entry_ready_known(entry)
            else:
                waiter(cycle)

    # Hot predicates and operand fields mirrored from the static
    # instruction as plain attributes (see Instruction.__post_init__ for
    # why; ``dest``/``srcs`` are consulted several times per instruction
    # by rename, dispatch planning and the RIT update).
    is_load: bool = field(init=False, repr=False)
    is_store: bool = field(init=False, repr=False)
    is_mem: bool = field(init=False, repr=False)
    is_branch: bool = field(init=False, repr=False)
    is_control: bool = field(init=False, repr=False)
    op_class: OpClass = field(init=False, repr=False)
    latency: int = field(init=False, repr=False)
    dest: Optional[int] = field(init=False, repr=False)
    srcs: Tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        static = self.static
        self.is_load = static.is_load
        self.is_store = static.is_store
        self.is_mem = static.is_mem
        self.is_branch = static.is_branch
        self.is_control = static.is_control
        self.op_class = static.op_class
        self.latency = static.latency
        self.dest = static.dest
        self.srcs = static.srcs

    @property
    def opcode(self) -> Opcode:
        return self.static.opcode

    def __repr__(self) -> str:
        return f"DynInst(#{self.seq} pc={self.pc} {self.static})"
