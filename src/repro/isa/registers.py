"""Register name helpers.

Registers live in one flat architected space so the renamer and the IQ can
treat them uniformly: integer registers occupy indices 0..31 (``R(i)``) and
floating-point registers occupy 32..63 (``F(i)``).  ``R(0)`` is hardwired to
zero, like the Alpha's r31 / MIPS's r0.
"""

from __future__ import annotations

from repro.common.errors import ProgramError
from repro.isa.opcodes import NUM_FP_REGS, NUM_INT_REGS

#: The always-zero integer register.
ZERO = 0


def R(index: int) -> int:
    """Architected index of integer register ``index``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ProgramError(f"integer register index {index} out of range")
    return index


def F(index: int) -> int:
    """Architected index of floating-point register ``index``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ProgramError(f"fp register index {index} out of range")
    return NUM_INT_REGS + index


def is_fp_reg(reg: int) -> bool:
    """True if ``reg`` names a floating-point register."""
    return reg >= NUM_INT_REGS


def reg_name(reg: int) -> str:
    """Pretty-print an architected register index."""
    if reg < 0 or reg >= NUM_INT_REGS + NUM_FP_REGS:
        raise ProgramError(f"register index {reg} out of range")
    if is_fp_reg(reg):
        return f"f{reg - NUM_INT_REGS}"
    return f"r{reg}"
