"""Opcode definitions for the repro RISC ISA.

The ISA is a small Alpha-flavoured load/store architecture: 32 integer and 32
floating-point registers, 8-byte memory words, compare-and-branch
conditionals.  Each opcode carries its function-unit class and execution
latency; the latencies follow Table 1 of the paper:

* integer: mul 3, div 20, all others 1
* FP: add/sub 2, mul 4, div 12, sqrt 24
* all operations fully pipelined except divide and sqrt
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class FUClass(enum.Enum):
    """Function unit classes (paper Table 1: 8 units of each)."""

    # Members are singletons and compare by identity, so the identity hash
    # is equivalent to Enum's default (Python-level) name hash — and it
    # keeps the FU pool's per-issue dict lookups out of the interpreter.
    __hash__ = object.__hash__

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    MEM_PORT = "mem_port"
    NONE = "none"            # control ops that consume no FU


class OpClass(enum.Enum):
    """Broad behavioural categories used by the timing model."""

    __hash__ = object.__hash__       # identity hash (see FUClass)

    INT_ARITH = enum.auto()
    FP_ARITH = enum.auto()
    LOAD = enum.auto()
    STORE = enum.auto()
    BRANCH = enum.auto()
    JUMP = enum.auto()
    HALT = enum.auto()
    NOP = enum.auto()


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    name: str
    op_class: OpClass
    fu_class: FUClass
    latency: int
    pipelined: bool = True


class Opcode(enum.Enum):
    """Every instruction the ISA supports."""

    __hash__ = object.__hash__       # identity hash (see FUClass)

    # Integer arithmetic (latency 1).
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SLT = "slt"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    SLLI = "slli"
    SRLI = "srli"
    SLTI = "slti"
    LUI = "lui"
    # Integer multiply / divide.
    MUL = "mul"
    DIV = "div"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FNEG = "fneg"
    CVTIF = "cvtif"      # int -> fp
    CVTFI = "cvtfi"      # fp -> int (truncate)
    FCMPLT = "fcmplt"    # fp compare, int result
    # Memory (address = base register + immediate).
    LD = "ld"            # integer load
    ST = "st"            # integer store
    FLD = "fld"          # fp load
    FST = "fst"          # fp store
    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    JMP = "jmp"
    HALT = "halt"
    NOP = "nop"


def _info(name: str, op_class: OpClass, fu: FUClass, latency: int,
          pipelined: bool = True) -> OpInfo:
    return OpInfo(name, op_class, fu, latency, pipelined)


OP_TABLE: Dict[Opcode, OpInfo] = {
    Opcode.ADD: _info("add", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.SUB: _info("sub", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.AND: _info("and", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.OR: _info("or", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.XOR: _info("xor", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.SLL: _info("sll", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.SRL: _info("srl", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.SLT: _info("slt", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.ADDI: _info("addi", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.ANDI: _info("andi", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.ORI: _info("ori", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.SLLI: _info("slli", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.SRLI: _info("srli", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.SLTI: _info("slti", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.LUI: _info("lui", OpClass.INT_ARITH, FUClass.INT_ALU, 1),
    Opcode.MUL: _info("mul", OpClass.INT_ARITH, FUClass.INT_MUL, 3),
    Opcode.DIV: _info("div", OpClass.INT_ARITH, FUClass.INT_MUL, 20,
                      pipelined=False),
    Opcode.FADD: _info("fadd", OpClass.FP_ARITH, FUClass.FP_ADD, 2),
    Opcode.FSUB: _info("fsub", OpClass.FP_ARITH, FUClass.FP_ADD, 2),
    Opcode.FMUL: _info("fmul", OpClass.FP_ARITH, FUClass.FP_MUL, 4),
    Opcode.FDIV: _info("fdiv", OpClass.FP_ARITH, FUClass.FP_MUL, 12,
                       pipelined=False),
    Opcode.FSQRT: _info("fsqrt", OpClass.FP_ARITH, FUClass.FP_MUL, 24,
                        pipelined=False),
    Opcode.FNEG: _info("fneg", OpClass.FP_ARITH, FUClass.FP_ADD, 2),
    Opcode.CVTIF: _info("cvtif", OpClass.FP_ARITH, FUClass.FP_ADD, 2),
    Opcode.CVTFI: _info("cvtfi", OpClass.FP_ARITH, FUClass.FP_ADD, 2),
    Opcode.FCMPLT: _info("fcmplt", OpClass.FP_ARITH, FUClass.FP_ADD, 2),
    Opcode.LD: _info("ld", OpClass.LOAD, FUClass.MEM_PORT, 1),
    Opcode.ST: _info("st", OpClass.STORE, FUClass.MEM_PORT, 1),
    Opcode.FLD: _info("fld", OpClass.LOAD, FUClass.MEM_PORT, 1),
    Opcode.FST: _info("fst", OpClass.STORE, FUClass.MEM_PORT, 1),
    Opcode.BEQ: _info("beq", OpClass.BRANCH, FUClass.INT_ALU, 1),
    Opcode.BNE: _info("bne", OpClass.BRANCH, FUClass.INT_ALU, 1),
    Opcode.BLT: _info("blt", OpClass.BRANCH, FUClass.INT_ALU, 1),
    Opcode.BGE: _info("bge", OpClass.BRANCH, FUClass.INT_ALU, 1),
    Opcode.BLE: _info("ble", OpClass.BRANCH, FUClass.INT_ALU, 1),
    Opcode.BGT: _info("bgt", OpClass.BRANCH, FUClass.INT_ALU, 1),
    Opcode.JMP: _info("jmp", OpClass.JUMP, FUClass.INT_ALU, 1),
    Opcode.HALT: _info("halt", OpClass.HALT, FUClass.NONE, 1),
    Opcode.NOP: _info("nop", OpClass.NOP, FUClass.NONE, 1),
}


def op_info(opcode: Opcode) -> OpInfo:
    """Look up the static properties of ``opcode``."""
    return OP_TABLE[opcode]


#: Opcodes whose result latency cannot be known at dispatch time.  In this
#: reproduction (as in the paper's base design) these are the loads: a load's
#: latency depends on where in the memory hierarchy it hits.
VARIABLE_LATENCY_OPCODES = frozenset({Opcode.LD, Opcode.FLD})

#: Number of architected registers in each file.
NUM_INT_REGS = 32
NUM_FP_REGS = 32
#: Registers live in one flat space: ints are 0..31, floats are 32..63.
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS
#: Word size in bytes (all memory accesses are one aligned word).
WORD_BYTES = 8
