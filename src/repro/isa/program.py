"""Program container: instructions plus a data-segment description."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ProgramError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import WORD_BYTES


@dataclass
class DataSegment:
    """A named block of words in the flat data memory."""

    name: str
    base: int          # byte address
    words: int

    @property
    def bytes(self) -> int:
        return self.words * WORD_BYTES

    def addr(self, index: int) -> int:
        """Byte address of element ``index``."""
        if not 0 <= index < self.words:
            raise ProgramError(
                f"index {index} out of range for segment {self.name!r} "
                f"({self.words} words)")
        return self.base + index * WORD_BYTES


@dataclass
class Program:
    """A complete program: code, labels, and data layout.

    ``memory_words`` is the total size of the data memory the program needs;
    ``initial_data`` maps word index -> initial value for any words that must
    be non-zero before execution starts.
    """

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    segments: Dict[str, DataSegment] = field(default_factory=dict)
    memory_words: int = 0
    initial_data: Dict[int, float] = field(default_factory=dict)
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def segment(self, name: str) -> DataSegment:
        try:
            return self.segments[name]
        except KeyError:
            raise ProgramError(f"no data segment named {name!r}") from None

    def validate(self) -> None:
        """Check structural invariants: targets in range, halt present."""
        if not self.instructions:
            raise ProgramError("empty program")
        for pc, inst in enumerate(self.instructions):
            if inst.target is not None and not (
                    0 <= inst.target < len(self.instructions)):
                raise ProgramError(
                    f"instruction {pc} ({inst}) targets out-of-range "
                    f"index {inst.target}")
            if inst.is_control and inst.target is None:
                raise ProgramError(f"instruction {pc} ({inst}) has no target")
        if not any(inst.is_halt for inst in self.instructions):
            raise ProgramError("program has no halt instruction")

    def disassemble(self) -> str:
        """Human-readable listing with label annotations."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for pc, inst in enumerate(self.instructions):
            for label in sorted(by_index.get(pc, ())):
                lines.append(f"{label}:")
            lines.append(f"  {pc:4d}: {inst}")
        return "\n".join(lines)
