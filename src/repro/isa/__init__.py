"""The repro RISC ISA: opcodes, programs, builder DSL, functional simulator."""

from repro.isa.builder import ProgramBuilder
from repro.isa.executor import MachineState, execute, run_functional
from repro.isa.instruction import DynInst, Instruction
from repro.isa.opcodes import (NUM_FP_REGS, NUM_INT_REGS, NUM_REGS,
                               VARIABLE_LATENCY_OPCODES, WORD_BYTES, FUClass,
                               OpClass, Opcode, OpInfo, op_info)
from repro.isa.program import DataSegment, Program
from repro.isa.registers import F, R, ZERO, is_fp_reg, reg_name

__all__ = [
    "DataSegment", "DynInst", "F", "FUClass", "Instruction", "MachineState",
    "NUM_FP_REGS", "NUM_INT_REGS", "NUM_REGS", "OpClass", "Opcode", "OpInfo",
    "Program", "ProgramBuilder", "R", "VARIABLE_LATENCY_OPCODES",
    "WORD_BYTES", "ZERO", "execute", "is_fp_reg", "op_info", "reg_name",
    "run_functional",
]
