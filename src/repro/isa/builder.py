"""A small assembler DSL for writing kernels in the repro ISA.

Example::

    b = ProgramBuilder("daxpy")
    x = b.alloc("x", 1024)
    y = b.alloc("y", 1024)
    i, n = R(1), R(2)
    b.li(n, 1024)
    b.li(i, 0)
    b.label("loop")
    addr = R(3)
    b.slli(addr, i, 3)
    b.fld(F(0), addr, base=x)
    b.fld(F(1), addr, base=y)
    b.fmul(F(2), F(0), F(4))
    b.fadd(F(3), F(2), F(1))
    b.fst(F(3), addr, base=y)
    b.addi(i, i, 1)
    b.blt(i, n, "loop")
    b.halt()
    program = b.build()

Branch targets are labels, resolved at :meth:`ProgramBuilder.build` time.
Data arrays are allocated with :meth:`alloc`; the returned
:class:`~repro.isa.program.DataSegment` can be used as a ``base=`` for memory
operations (the segment base is folded into the immediate displacement).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.common.errors import ProgramError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import WORD_BYTES, Opcode
from repro.isa.program import DataSegment, Program

Target = Union[str, int]


class ProgramBuilder:
    """Accumulates instructions and data segments, then builds a Program."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[int] = []     # indices whose target is a label
        self._targets: List[Optional[Target]] = []
        self._segments: Dict[str, DataSegment] = {}
        self._next_base = 0
        self._initial_data: Dict[int, float] = {}

    # ------------------------------------------------------------- data --
    def alloc(self, name: str, words: int, *, align_bytes: int = 64,
              init: Optional[List[float]] = None) -> DataSegment:
        """Allocate a named array of ``words`` 8-byte words.

        Segments are aligned to ``align_bytes`` (cache-line aligned by
        default) so kernels have predictable cache behaviour.
        """
        if name in self._segments:
            raise ProgramError(f"segment {name!r} already allocated")
        if words <= 0:
            raise ProgramError("segment must have at least one word")
        base = -(-self._next_base // align_bytes) * align_bytes
        segment = DataSegment(name=name, base=base, words=words)
        self._segments[name] = segment
        self._next_base = base + segment.bytes
        if init is not None:
            if len(init) > words:
                raise ProgramError(
                    f"init data for {name!r} longer than segment")
            first_word = base // WORD_BYTES
            for offset, value in enumerate(init):
                self._initial_data[first_word + offset] = value
        return segment

    def set_word(self, segment: DataSegment, index: int, value: float) -> None:
        """Set the initial value of one element of ``segment``."""
        self._initial_data[segment.addr(index) // WORD_BYTES] = value

    # ------------------------------------------------------------ labels --
    def label(self, name: str) -> None:
        """Define ``name`` at the current instruction position."""
        if name in self._labels:
            raise ProgramError(f"label {name!r} redefined")
        self._labels[name] = len(self._instructions)

    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    # -------------------------------------------------------------- emit --
    def _emit(self, opcode: Opcode, dest: Optional[int] = None,
              srcs: tuple = (), imm: int = 0,
              target: Optional[Target] = None) -> None:
        self._instructions.append(Instruction(
            opcode=opcode, dest=dest, srcs=srcs, imm=imm,
            target=target if isinstance(target, int) else None))
        self._targets.append(target)

    # Integer three-register ops.
    def add(self, rd: int, ra: int, rb: int) -> None:
        self._emit(Opcode.ADD, rd, (ra, rb))

    def sub(self, rd: int, ra: int, rb: int) -> None:
        self._emit(Opcode.SUB, rd, (ra, rb))

    def and_(self, rd: int, ra: int, rb: int) -> None:
        self._emit(Opcode.AND, rd, (ra, rb))

    def or_(self, rd: int, ra: int, rb: int) -> None:
        self._emit(Opcode.OR, rd, (ra, rb))

    def xor(self, rd: int, ra: int, rb: int) -> None:
        self._emit(Opcode.XOR, rd, (ra, rb))

    def sll(self, rd: int, ra: int, rb: int) -> None:
        self._emit(Opcode.SLL, rd, (ra, rb))

    def srl(self, rd: int, ra: int, rb: int) -> None:
        self._emit(Opcode.SRL, rd, (ra, rb))

    def slt(self, rd: int, ra: int, rb: int) -> None:
        self._emit(Opcode.SLT, rd, (ra, rb))

    def mul(self, rd: int, ra: int, rb: int) -> None:
        self._emit(Opcode.MUL, rd, (ra, rb))

    def div(self, rd: int, ra: int, rb: int) -> None:
        self._emit(Opcode.DIV, rd, (ra, rb))

    # Integer immediates.
    def addi(self, rd: int, ra: int, imm: int) -> None:
        self._emit(Opcode.ADDI, rd, (ra,), imm)

    def andi(self, rd: int, ra: int, imm: int) -> None:
        self._emit(Opcode.ANDI, rd, (ra,), imm)

    def ori(self, rd: int, ra: int, imm: int) -> None:
        self._emit(Opcode.ORI, rd, (ra,), imm)

    def slli(self, rd: int, ra: int, imm: int) -> None:
        self._emit(Opcode.SLLI, rd, (ra,), imm)

    def srli(self, rd: int, ra: int, imm: int) -> None:
        self._emit(Opcode.SRLI, rd, (ra,), imm)

    def slti(self, rd: int, ra: int, imm: int) -> None:
        self._emit(Opcode.SLTI, rd, (ra,), imm)

    def lui(self, rd: int, imm: int) -> None:
        """Load ``imm`` shifted left by 16 (for large constants)."""
        self._emit(Opcode.LUI, rd, (0,), imm)

    def li(self, rd: int, value: int) -> None:
        """Load an immediate constant (pseudo-op: addi rd, r0, value)."""
        self._emit(Opcode.ADDI, rd, (0,), value)

    def mov(self, rd: int, ra: int) -> None:
        """Register move (pseudo-op: addi rd, ra, 0)."""
        self._emit(Opcode.ADDI, rd, (ra,), 0)

    # Floating point.
    def fadd(self, fd: int, fa: int, fb: int) -> None:
        self._emit(Opcode.FADD, fd, (fa, fb))

    def fsub(self, fd: int, fa: int, fb: int) -> None:
        self._emit(Opcode.FSUB, fd, (fa, fb))

    def fmul(self, fd: int, fa: int, fb: int) -> None:
        self._emit(Opcode.FMUL, fd, (fa, fb))

    def fdiv(self, fd: int, fa: int, fb: int) -> None:
        self._emit(Opcode.FDIV, fd, (fa, fb))

    def fsqrt(self, fd: int, fa: int) -> None:
        self._emit(Opcode.FSQRT, fd, (fa,))

    def fneg(self, fd: int, fa: int) -> None:
        self._emit(Opcode.FNEG, fd, (fa,))

    def cvtif(self, fd: int, ra: int) -> None:
        self._emit(Opcode.CVTIF, fd, (ra,))

    def cvtfi(self, rd: int, fa: int) -> None:
        self._emit(Opcode.CVTFI, rd, (fa,))

    def fcmplt(self, rd: int, fa: int, fb: int) -> None:
        self._emit(Opcode.FCMPLT, rd, (fa, fb))

    # Memory.  ``base`` folds a DataSegment's byte base into the immediate.
    def _mem_imm(self, offset: int, base: Optional[DataSegment]) -> int:
        return offset + (base.base if base is not None else 0)

    def ld(self, rd: int, addr_reg: int, offset: int = 0,
           base: Optional[DataSegment] = None) -> None:
        self._emit(Opcode.LD, rd, (addr_reg,), self._mem_imm(offset, base))

    def st(self, rs: int, addr_reg: int, offset: int = 0,
           base: Optional[DataSegment] = None) -> None:
        self._emit(Opcode.ST, None, (addr_reg, rs),
                   self._mem_imm(offset, base))

    def fld(self, fd: int, addr_reg: int, offset: int = 0,
            base: Optional[DataSegment] = None) -> None:
        self._emit(Opcode.FLD, fd, (addr_reg,), self._mem_imm(offset, base))

    def fst(self, fs: int, addr_reg: int, offset: int = 0,
            base: Optional[DataSegment] = None) -> None:
        self._emit(Opcode.FST, None, (addr_reg, fs),
                   self._mem_imm(offset, base))

    # Control flow.
    def beq(self, ra: int, rb: int, target: Target) -> None:
        self._emit(Opcode.BEQ, None, (ra, rb), target=target)

    def bne(self, ra: int, rb: int, target: Target) -> None:
        self._emit(Opcode.BNE, None, (ra, rb), target=target)

    def blt(self, ra: int, rb: int, target: Target) -> None:
        self._emit(Opcode.BLT, None, (ra, rb), target=target)

    def bge(self, ra: int, rb: int, target: Target) -> None:
        self._emit(Opcode.BGE, None, (ra, rb), target=target)

    def ble(self, ra: int, rb: int, target: Target) -> None:
        self._emit(Opcode.BLE, None, (ra, rb), target=target)

    def bgt(self, ra: int, rb: int, target: Target) -> None:
        self._emit(Opcode.BGT, None, (ra, rb), target=target)

    def jmp(self, target: Target) -> None:
        self._emit(Opcode.JMP, target=target)

    def halt(self) -> None:
        self._emit(Opcode.HALT)

    def nop(self) -> None:
        self._emit(Opcode.NOP)

    # ------------------------------------------------------------- build --
    def build(self) -> Program:
        """Resolve labels and produce a validated Program."""
        instructions: List[Instruction] = []
        for index, (inst, target) in enumerate(
                zip(self._instructions, self._targets)):
            if isinstance(target, str):
                if target not in self._labels:
                    raise ProgramError(
                        f"instruction {index} references undefined label "
                        f"{target!r}")
                inst = Instruction(opcode=inst.opcode, dest=inst.dest,
                                   srcs=inst.srcs, imm=inst.imm,
                                   target=self._labels[target])
            instructions.append(inst)
        program = Program(
            instructions=instructions,
            labels=dict(self._labels),
            segments=dict(self._segments),
            memory_words=-(-self._next_base // WORD_BYTES),
            initial_data=dict(self._initial_data),
            name=self.name)
        program.validate()
        return program
