#!/usr/bin/env python3
"""Scenario: SMT throughput with a shared segmented IQ (paper section 7).

"By scheduling across multiple threads, an SMT processor may obtain even
larger benefits out of increased IQ sizes... the dynamic inter-chain
scheduling of our segmented IQ should allow chains from independent
threads to exploit thread-level parallelism effectively."

Co-schedules pairs of benchmark analogs on one core and compares the SMT
throughput against running the two programs back to back, for both the
segmented IQ and the ideal IQ.  If the segmented design's SMT speedups
track the ideal's, the section-7 hypothesis holds.
"""

from repro import WORKLOADS, configs, execute
from repro.pipeline import SMTProcessor

PAIRS = [("swim", "twolf"), ("equake", "vortex"), ("mgrid", "gcc")]
BUDGET = 10_000


def run(names, params):
    programs = [WORKLOADS[name].build(1) for name in names]
    streams = [execute(program, max_instructions=BUDGET)
               for program in programs]
    processor = SMTProcessor(params, streams)
    processor.warm_code(programs)
    processor.warm_data(programs,
                        threads=[i for i, name in enumerate(names)
                                 if WORKLOADS[name].warm_data])
    processor.run(max_cycles=4_000_000)
    return processor


def main() -> None:
    designs = [("segmented-512/128", configs.segmented(512, 128, "comb")),
               ("ideal-512", configs.ideal(512))]
    print(f"{'pair':<18} {'design':<18} {'thread IPCs':>13} "
          f"{'SMT IPC':>8} {'vs serial':>10}")
    for left, right in PAIRS:
        for design_name, params in designs:
            serial_cycles = sum(run([name], params).cycle
                                for name in (left, right))
            smt = run([left, right], params)
            speedup = serial_cycles / smt.cycle if smt.cycle else 0.0
            ipcs = f"{smt.thread_ipc(0):.2f}/{smt.thread_ipc(1):.2f}"
            print(f"{left + '+' + right:<18} {design_name:<18} "
                  f"{ipcs:>13} {smt.ipc:>8.2f} {speedup:>9.2f}x")
        print()


if __name__ == "__main__":
    main()
