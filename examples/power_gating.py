#!/usr/bin/env python3
"""Scenario: dynamic segment power gating (the paper's section 7).

"The segmented structure lends itself naturally to dynamic resizing by
gating clocks and/or power on a segment granularity."  This example runs
two contrasting workloads — mispredict-bound `gcc` (low queue demand) and
streaming `swim` (high demand) — with the occupancy-driven resize
controller, and reports the powered-segment-cycles saved versus the
performance given up.
"""

import dataclasses

from repro import WORKLOADS, configs, execute, Processor
from repro.common import segmented_iq_params, ProcessorParams


def run(benchmark: str, dynamic: bool):
    iq = segmented_iq_params(512, max_chains=128)
    if dynamic:
        iq = dataclasses.replace(iq, dynamic_resize=True,
                                 resize_interval=100)
    params = ProcessorParams().replace(iq=iq)
    spec = WORKLOADS[benchmark]
    program = spec.build(1)
    processor = Processor(params, execute(
        program, max_instructions=spec.default_instructions))
    processor.warm_code(program)
    if spec.warm_data:
        processor.warm_data(program)
    processor.run(max_cycles=3_000_000)
    return processor


def main() -> None:
    from repro.harness.energy import EnergyModel, energy_per_instruction

    model = EnergyModel()
    print(f"{'benchmark':<10} {'mode':<8} {'IPC':>6} {'powered seg-cycles':>19} "
          f"{'avg active':>11} {'EPI proxy':>10}")
    for benchmark in ("gcc", "twolf", "swim"):
        static = run(benchmark, dynamic=False)
        adaptive = run(benchmark, dynamic=True)
        static_power = static.iq.num_segments * static.cycle
        adaptive_power = adaptive.stats.get("iq.powered_segment_cycles")
        avg_active = adaptive.stats.get("iq.active_segments")
        static_epi = energy_per_instruction(
            model.estimate(static.stats.as_dict()), static.committed)
        adaptive_epi = energy_per_instruction(
            model.estimate(adaptive.stats.as_dict()), adaptive.committed)
        print(f"{benchmark:<10} {'static':<8} {static.ipc:>6.3f} "
              f"{static_power:>19.0f} {static.iq.num_segments:>11.1f} "
              f"{static_epi:>10.2f}")
        print(f"{'':<10} {'dynamic':<8} {adaptive.ipc:>6.3f} "
              f"{adaptive_power:>19.0f} {avg_active:>11.1f} "
              f"{adaptive_epi:>10.2f}")
        saved = 1 - adaptive_power / static_power if static_power else 0.0
        cost = 1 - adaptive.ipc / static.ipc if static.ipc else 0.0
        print(f"{'':<10} -> {100 * saved:.0f}% of queue segment-cycles "
              f"gated off for {100 * cost:+.1f}% IPC\n")


if __name__ == "__main__":
    main()
