#!/usr/bin/env python3
"""Scenario: write your own kernel and inspect the scheduler's behaviour.

Shows the full public workflow a user of this library follows:

1. write a kernel with the :class:`~repro.ProgramBuilder` DSL (here, a
   pointer-chasing reduction — the worst case for any scheduler, since
   each load's address depends on the previous load);
2. check it functionally with :func:`~repro.run_functional`;
3. run it through the timing model on several IQ designs;
4. pull microarchitectural detail out of the statistics.
"""

import random

from repro import (F, Processor, ProcessorParams, ProgramBuilder, R,
                   configs, execute, run_functional)


def build_pointer_chase(nodes: int = 4096, hops: int = 3000):
    """A linked-list traversal summing a payload per node."""
    rng = random.Random(7)
    order = list(range(1, nodes))
    rng.shuffle(order)
    order.append(0)                      # close the cycle

    b = ProgramBuilder("pointer-chase")
    next_ptr = b.alloc("next", nodes)
    payload = b.alloc("payload", nodes,
                      init=[float(i % 31) for i in range(nodes)])
    previous = 0
    for node in order:                   # next[previous] = &node
        b.set_word(next_ptr, previous, node * 8)
        previous = node

    ptr, count, limit = R(1), R(2), R(3)
    b.li(ptr, 0)
    b.li(count, 0)
    b.li(limit, hops)
    b.label("loop")
    b.ld(ptr, ptr, base=next_ptr)        # ptr = next[ptr]: serial loads
    b.fld(F(1), ptr, base=payload)
    b.fadd(F(0), F(0), F(1))             # sum += payload[ptr]
    b.addi(count, count, 1)
    b.blt(count, limit, "loop")
    b.fst(F(0), R(0), base=payload)
    b.halt()
    return b.build()


def main() -> None:
    program = build_pointer_chase()
    print(f"kernel: {program.name}, {len(program)} static instructions, "
          f"{program.memory_words * 8 // 1024} KB of data\n")

    # 1. Functional check: the traversal must visit every node per lap.
    state = run_functional(program)
    print(f"functional result: sum = {state.memory[0]:.1f} after "
          f"{state.instruction_count} instructions\n")

    # 2. Timing runs.  Pointer chasing is latency-bound and serial, so no
    #    IQ design should beat the dependence chain's own speed — a good
    #    sanity check that the simulator doesn't invent parallelism.
    print(f"  {'design':<22} {'IPC':>6} {'cycles':>8} {'IQ occupancy':>13}")
    for label, params in [
            ("ideal-512", configs.ideal(512)),
            ("segmented-512/128", configs.segmented(512, 128, "comb")),
            ("prescheduled-320", configs.prescheduled(24)),
            ("fifo-512", configs.fifo(512)),
    ]:
        processor = Processor(params, execute(program))
        processor.warm_code(program)
        processor.run(max_cycles=3_000_000)
        occupancy = processor.stats.get("iq.occupancy")
        print(f"  {label:<22} {processor.ipc:>6.3f} {processor.cycle:>8} "
              f"{occupancy:>13.1f}")

    # 3. Microarchitectural drill-down on the segmented design.
    processor = Processor(configs.segmented(512, 128, "comb"),
                          execute(program))
    processor.warm_code(program)
    processor.run(max_cycles=3_000_000)
    stats = processor.stats
    print("\nsegmented IQ detail:")
    print(f"  chains allocated:        {stats.get('chains.allocated'):.0f}")
    print(f"  hit/miss predictor:      "
          f"{100 * processor.iq.hmp.hit_prediction_accuracy:.1f}% accurate "
          f"on hit predictions")
    print(f"  promotions:              {stats.get('iq.promotions'):.0f}")
    print(f"  pushdowns:               {stats.get('iq.pushdowns'):.0f}")
    print(f"  deadlock recoveries:     "
          f"{stats.get('iq.deadlock_recoveries'):.0f}")
    print(f"  branch accuracy:         "
          f"{100 * processor.frontend.bpred.accuracy:.1f}%")


if __name__ == "__main__":
    main()
