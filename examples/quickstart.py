#!/usr/bin/env python3
"""Quickstart: simulate one benchmark on three instruction-queue designs.

Runs the `swim` analog (a streaming FP kernel whose loads nearly all miss)
on a 32-entry conventional IQ, the paper's 512-entry segmented IQ with 128
chains, and an ideal 512-entry IQ — the abstract's headline comparison.

Usage::

    python examples/quickstart.py [benchmark]
"""

import sys

from repro import WORKLOADS, api, configs


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "swim"
    if benchmark not in WORKLOADS:
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"choose from {sorted(WORKLOADS)}")

    print(f"benchmark: {benchmark} — {WORKLOADS[benchmark].description}\n")

    conventional = api.run(configs.ideal(32), benchmark,
                           config_label="conventional-32")
    segmented = api.run(
        configs.segmented(512, max_chains=128, variant="comb"), benchmark,
        config_label="segmented-512/128")
    ideal = api.run(configs.ideal(512), benchmark,
                    config_label="ideal-512")

    for result in (conventional, segmented, ideal):
        print(f"  {result.config:<18} IPC = {result.ipc:5.3f}   "
              f"({result.instructions} instructions, "
              f"{result.cycles} cycles)")

    gain = segmented.ipc / conventional.ipc if conventional.ipc else 0.0
    fraction = segmented.ipc / ideal.ipc if ideal.ipc else 0.0
    print(f"\nsegmented IQ vs 32-entry conventional: {100 * (gain - 1):+.0f}%")
    print(f"segmented IQ as a fraction of ideal-512: {100 * fraction:.0f}%")
    print(f"chain wires in use: avg {segmented.chains_avg:.1f}, "
          f"peak {segmented.chains_peak:.0f}")


if __name__ == "__main__":
    main()
