#!/usr/bin/env python3
"""Scenario: chains as the steering unit for clustered execution (§7).

"We believe that future large IQs will employ both vertical segmentation,
as we have proposed, and horizontal clustering, as in the Alpha 21264...
chains seem to form a natural unit for assignment to function-unit
clusters."

Splits the 8-wide machine into two 4-wide clusters with a one-cycle
cross-cluster bypass penalty and compares steering policies: naive load
balancing (spreads dependence chains across clusters, paying the penalty
constantly) versus chain steering (each chain executes beside its head).
"""

from repro import WORKLOADS, api, configs


def main() -> None:
    budget = 12_000
    print(f"{'benchmark':<10} {'config':<22} {'IPC':>6} "
          f"{'cross-cluster fwds':>19}")
    for benchmark in ("mgrid", "swim", "applu"):
        base = api.run(configs.segmented(512, 128, "comb"), benchmark,
                       max_instructions=budget)
        print(f"{benchmark:<10} {'unclustered':<22} {base.ipc:>6.3f} "
              f"{'—':>19}")
        for steering in ("balance", "chain"):
            params = configs.segmented(512, 128, "comb").replace(
                clusters=2, cluster_steering=steering)
            result = api.run(params, benchmark,
                             max_instructions=budget)
            crossings = result.stats.get("clusters.cross_forwards", 0)
            print(f"{'':<10} {'2 clusters, ' + steering:<22} "
                  f"{result.ipc:>6.3f} {crossings:>19.0f}")
        print()
    print("chain steering keeps each dependence chain inside one cluster,\n"
          "so clustering costs almost nothing — the section-7 hypothesis.")


if __name__ == "__main__":
    main()
