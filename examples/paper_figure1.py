#!/usr/bin/env python3
"""Walk through the paper's Figure 1 worked example.

Builds the nine-instruction code sequence from Figure 1(a) through the
dispatch-stage machinery — chain creation, the register information table,
and delay-value assignment — then prints the delay values and the segment
placement of Figure 1(b), and finally demonstrates the self-timed
countdown after chain head i0 issues (section 3.2's narrative).
"""

from repro.common import StatGroup
from repro.core.segmented.chains import ChainManager
from repro.core.segmented.links import combined_delay
from repro.core.segmented.register_info import RegisterInfoTable
from repro.isa import Instruction, Opcode
from repro.isa.instruction import DynInst

# (name, text, dest reg, source regs, latency, is chain head)
EXAMPLE = [
    ("i0", "add *,* -> r1 ", 1, (), 1, True),
    ("i1", "mul *,* -> r2 ", 2, (), 2, True),
    ("i2", "add r2,* -> r4", 4, (2,), 1, False),
    ("i3", "mul r4,* -> r6", 6, (4,), 2, False),
    ("i4", "mul r6,* -> r8", 8, (6,), 2, False),
    ("i5", "add r1,* -> r3", 3, (1,), 1, False),
    ("i6", "add r3,* -> r5", 5, (3,), 1, False),
    ("i7", "add r5,* -> r7", 7, (5,), 1, False),
    ("i8", "add r6,r7-> r9", 9, (6, 7), 1, False),
]

THRESHOLDS = (2, 4, 6)      # segment 0, 1, 2 admission thresholds


def segment_for(delay: int) -> int:
    for segment, threshold in enumerate(THRESHOLDS):
        if delay < threshold:
            return segment
    return len(THRESHOLDS) - 1


def main() -> None:
    chains = ChainManager(None, StatGroup())
    rit = RegisterInfoTable()
    placements = []
    chain_of = {}

    for seq, (name, text, dest, srcs, latency, is_head) in enumerate(EXAMPLE):
        inst = DynInst(seq=seq, pc=seq, static=Instruction(
            opcode=Opcode.ADD, dest=dest, srcs=srcs))
        links = [link for link in (rit.link_for(reg, 0) for reg in srcs)
                 if link is not None]
        if name == "i8":
            # Figure 1(b): the left/right predictor assigns i8 to the r6
            # chain (the later-arriving operand).
            links = [max(links, key=lambda l: l.dh)]
        delay = combined_delay(links, 0)
        if is_head:
            chain = chains.allocate(inst, head_segment=0,
                                    head_latency=latency)
            rit.set_chained(dest, inst, chain, latency)
        else:
            governing = max(links, key=lambda l: l.dh)
            chain = governing.chain
            rit.set_chained(dest, inst, chain, governing.dh + latency)
        chain_of[name] = chain
        placements.append((name, text, latency, delay, segment_for(delay)))

    print("Figure 1(a): delay values assigned at dispatch\n")
    print(f"  {'inst':<4} {'code':<16} {'latency':>7} {'delay':>6} {'segment':>8}")
    for name, text, latency, delay, segment in placements:
        print(f"  {name:<4} {text:<16} {latency:>7} {delay:>6} {segment:>8}")

    print("\nFigure 1(b): instructions per segment "
          "(thresholds 2 / 4 / 6)\n")
    for segment in reversed(range(3)):
        members = [name for name, _, _, _, s in placements if s == segment]
        print(f"  segment {segment}: {', '.join(members)}")

    print("\nSection 3.2: chain head i0 issues; its chain self-times.\n")
    chain_a = chain_of["i0"]
    chain_a.on_head_issued(now=0)
    for cycle in range(4):
        d5 = chain_a.member_delay(1, cycle)     # i5, dh = 1
        d6 = chain_a.member_delay(2, cycle)     # i6, dh = 2
        d7 = chain_a.member_delay(3, cycle)     # i7, dh = 3
        d2 = chain_of["i1"].member_delay(2, cycle)   # i2 on chain B: frozen
        print(f"  cycle {cycle}: i5={d5} i6={d6} i7={d7}   "
              f"(i2 on i1's chain stays at {d2})")
    print("\ni5/i6/i7 gradually promote into segment 0 and issue, while "
          "i1's chain waits — exactly Figure 1's narrative.")


if __name__ == "__main__":
    main()
