#!/usr/bin/env python3
"""Scenario: how window size tolerates the memory wall.

The paper's motivation (section 1): larger instruction windows expose more
ILP — in particular, they overlap more main-memory accesses — but
conventional IQs cannot grow without wrecking cycle time.  This example
sweeps IQ size on a memory-bound workload for the ideal IQ, the segmented
IQ, and the Michaud-Seznec prescheduler, printing the Figure 3-style
curves plus the memory-level-parallelism each design achieves.

Usage::

    python examples/memory_wall.py [benchmark]
"""

import sys

from repro import WORKLOADS, api, configs
from repro.harness.reporting import ascii_series_plot


def mlp(result) -> float:
    """Average useful overlap: memory accesses per 100 cycles."""
    accesses = result.stats.get("mem.accesses", 0)
    return 100.0 * accesses / result.cycles if result.cycles else 0.0


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "swim"
    if benchmark not in WORKLOADS:
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"choose from {sorted(WORKLOADS)}")
    sizes = (32, 64, 128, 256, 512)

    series = {"ideal": {}, "segmented-128ch": {}}
    mlp_rows = []
    for size in sizes:
        ideal = api.run(configs.ideal(size), benchmark)
        seg = api.run(configs.segmented(size, 128, "comb"), benchmark)
        series["ideal"][size] = ideal.ipc
        series["segmented-128ch"][size] = seg.ipc
        mlp_rows.append((size, mlp(ideal), mlp(seg)))

    presched = {}
    for lines in (8, 24, 56, 120):
        result = api.run(configs.prescheduled(lines), benchmark)
        presched[32 + 12 * lines] = result.ipc
    series["prescheduled"] = presched

    print(ascii_series_plot(
        series, title=f"IPC vs queue size — {benchmark} "
                      f"({WORKLOADS[benchmark].description})"))

    print("memory accesses per 100 cycles (higher = more misses "
          "overlapped):")
    print(f"  {'IQ size':>8} {'ideal':>8} {'segmented':>10}")
    for size, ideal_mlp, seg_mlp in mlp_rows:
        print(f"  {size:>8} {ideal_mlp:>8.2f} {seg_mlp:>10.2f}")

    small = series["segmented-128ch"][sizes[0]]
    large = series["segmented-128ch"][sizes[-1]]
    print(f"\nsegmented IQ speedup from {sizes[0]} to {sizes[-1]} entries: "
          f"{large / small:.2f}x" if small else "")


if __name__ == "__main__":
    main()
