"""Setup shim: allows 'setup.py develop' on offline machines without wheel."""
from setuptools import setup

setup()
