"""Kernel-engine microbenchmark: promote / wakeup / pop in isolation.

Times the three hot operations of the segmented-IQ struct-of-arrays
engine (``repro.core.segmented.kernels``) on synthetic state, outside
the full pipeline, for every available backend:

* ``promote_all`` — the fused per-cycle promotion sweep draining a
  fully-loaded queue (dense seg-512 shape: 8 segments x 64 slots),
  including the issue-side ``free_entry`` of segment-0 arrivals.
* ``notify`` — a chain wakeup broadcast over a large member list while
  the chain head walks down the segments (the critical-base filter and
  duplicate-push suppression are both exercised).
* ``pop_eligible`` — batched oldest-first selection draining one packed
  512-entry segment at issue width.

Pipeline-tier ops (``repro.pipeline.kernels``) ride along:

* ``fu_ops`` — the per-issue FU-heap claims/probes plus the per-cycle
  cache-port and next-event scans.
* ``rename`` — the dispatch rename loop (fused C kernel on the
  compiled backend, the Processor twin on py).

Not a pytest module on purpose: it measures, it does not assert.  Run

    PYTHONPATH=src python benchmarks/bench_kernels.py [--rounds N]

Results (best-of-``rounds`` CPU time per call, plus the compiled/py
ratio when the C extension is built) are printed and written to
``benchmarks/out/kernels_micro.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.segmented import kernels

OUT_DIR = Path(__file__).parent / "out"

MODE_QUEUED = 0


class MicroEntry:
    """Minimal stand-in for an IQ entry: the engine only mirrors
    ``segment``; ``slot`` lets the driver free segment-0 arrivals."""

    __slots__ = ("segment", "slot")

    def __init__(self):
        self.segment = -1
        self.slot = -1


class MicroChain:
    """Minimal stand-in for a chain: the engine mirrors these two."""

    __slots__ = ("head_segment", "base")

    def __init__(self, head_segment, base):
        self.head_segment = head_segment
        self.base = base


def _thresholds(num_segments):
    return [2 * k for k in range(num_segments)]


# ------------------------------------------------------------- promote --
def bench_promote(rounds):
    """Drain a full 8x64 queue through promote_all, freeing segment-0
    arrivals each sweep the way select_issue would."""
    num_segments, cap, width = 8, 64, 8
    best = None
    calls = 0
    for _ in range(rounds):
        eng = kernels.make_engine(num_segments, cap,
                                  _thresholds(num_segments))
        seq = 0
        for seg in range(1, num_segments):
            for _ in range(cap):
                obj = MicroEntry()
                obj.slot = eng.insert_entry(obj, seq, seg, -1, -1, 0,
                                            -1, 0, -1, 0)
                seq += 1
        calls = 0
        t0 = time.perf_counter()
        now = 0
        while True:
            eng.set_now(now)
            _promos, _push, seg0 = eng.promote_all(now, width, False)
            calls += 1
            for obj in seg0:
                eng.free_entry(obj.slot)
            eng.refresh_free_prev()
            if not any(eng.seg_occ(s) for s in range(num_segments)):
                break
            now += 1
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return {"op": "promote_all", "calls": calls,
            "shape": f"{num_segments}x{cap} dense, width {width}",
            "seconds": best, "us_per_call": 1e6 * best / calls}


# -------------------------------------------------------------- wakeup --
def bench_notify(rounds, members=256, sweeps=16):
    """Broadcast chain events over a large member list as the head
    walks segment by segment toward issue (base = 2*head_segment)."""
    num_segments, cap = 8, 64
    top = num_segments - 1
    best = None
    calls = 0
    for _ in range(rounds):
        eng = kernels.make_engine(num_segments, cap * num_segments,
                                  _thresholds(num_segments))
        chain = MicroChain(top, 2 * top)
        cslot = eng.alloc_chain(chain, MODE_QUEUED, 2 * top, top)
        for seq in range(members):
            seg = 1 + seq % top
            eng.insert_entry(MicroEntry(), seq, seg, -1, cslot,
                             seq % 4, -1, 0, -1, 0)
        calls = 0
        t0 = time.perf_counter()
        for _ in range(sweeps):
            for head in range(top, -1, -1):
                eng.chain_set(cslot, MODE_QUEUED, 2 * head, head)
                eng.notify(cslot)
                calls += 1
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return {"op": "notify", "calls": calls,
            "shape": f"{members} members, head walk x{sweeps}",
            "seconds": best, "us_per_call": 1e6 * best / calls}


# ----------------------------------------------------------------- pop --
def bench_pop(rounds, entries=512, limit=8):
    """Drain one packed segment through pop_eligible at issue width."""
    best = None
    calls = 0
    for _ in range(rounds):
        eng = kernels.make_engine(2, entries, [0, 0])
        for seq in range(entries):
            eng.insert_entry(MicroEntry(), seq, 1, -1, -1, 0, -1, 0,
                             -1, 0)
        calls = 0
        t0 = time.perf_counter()
        while eng.pop_eligible(1, 0, limit):
            calls += 1
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return {"op": "pop_eligible", "calls": calls,
            "shape": f"{entries} entries, limit {limit}",
            "seconds": best, "us_per_call": 1e6 * best / calls}


# -------------------------------------------------------- pipeline tier --
class MicroCounter:
    """Minimal stat counter honouring the ``inc`` protocol."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


def bench_fu(rounds, cycles=4096):
    """Pipeline-tier engine: FU-heap claims/probes the way _issue makes
    them, plus the per-cycle cache-port and next-event scans."""
    from repro.pipeline import kernels as pipeline_kernels
    best = None
    calls = 0
    for _ in range(rounds):
        eng = pipeline_kernels.make_engine(
            4, 2, [8, 4, 2, 2], 3,
            [MicroCounter() for _ in range(4)], MicroCounter())
        calls = 0
        t0 = time.perf_counter()
        for now in range(cycles):
            for ci in range(4):
                eng.fu_can_accept(ci, now & 1, now)
                eng.fu_accept(ci, now & 1, 1 + (ci & 1), now)
                calls += 2
            eng.fu_cache_port(now)
            eng.fu_next_event(now)
            calls += 2
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return {"op": "fu_ops", "calls": calls,
            "shape": f"4 classes x 2 clusters, {cycles} cycles",
            "seconds": best, "us_per_call": 1e6 * best / calls}


def bench_rename(rounds, insts=4096):
    """The dispatch rename loop over a mixed ready/in-flight register
    file: the fused C kernel on the compiled backend, the Processor
    twin on py (same objects built either way)."""
    from repro.core.iq_base import Operand
    from repro.pipeline.kernels import rename_kernel

    class Producer:
        __slots__ = ("value_ready_cycle",)

        def __init__(self, ready):
            self.value_ready_cycle = ready

    last_writer = {reg: Producer(None if reg % 3 == 0 else reg)
                   for reg in range(1, 32)}
    src_sets = [(1 + i % 31, 1 + (i * 7) % 31) for i in range(insts)]
    fused = rename_kernel()
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        if fused is not None:
            for srcs in src_sets:
                fused(Operand, last_writer, srcs, -1)
        else:
            for srcs in src_sets:
                operands = []
                for reg in srcs:
                    producer = last_writer.get(reg) if reg != 0 else None
                    if producer is None:
                        operands.append(Operand(reg, None, 0, 0))
                    else:
                        operands.append(Operand(
                            reg, producer, producer.value_ready_cycle, 0))
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return {"op": "rename", "calls": len(src_sets),
            "shape": "2 srcs/inst, 31 live writers",
            "seconds": best, "us_per_call": 1e6 * best / len(src_sets)}


# -------------------------------------------------------------- driver --
def available_backends():
    names = ["py"]
    try:
        kernels.set_backend("compiled")
        kernels.backend()
        names.append("compiled")
    except RuntimeError:
        pass
    finally:
        kernels.set_backend(None)
    return names


def run(rounds=5):
    results = {}
    for name in available_backends():
        kernels.set_backend(name)
        try:
            results[name] = [bench_promote(rounds), bench_notify(rounds),
                             bench_pop(rounds), bench_fu(rounds),
                             bench_rename(rounds)]
        finally:
            kernels.set_backend(None)
    return results


def render(results):
    lines = []
    ops = [row["op"] for row in next(iter(results.values()))]
    have_c = "compiled" in results
    header = f"{'op':<14}{'shape':<34}{'py us/call':>12}"
    if have_c:
        header += f"{'compiled':>12}{'ratio':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for i, op in enumerate(ops):
        py = results["py"][i]
        line = f"{op:<14}{py['shape']:<34}{py['us_per_call']:>12.2f}"
        if have_c:
            c = results["compiled"][i]
            ratio = py["us_per_call"] / c["us_per_call"]
            line += f"{c['us_per_call']:>12.2f}{ratio:>7.1f}x"
        lines.append(line)
    if not have_c:
        lines.append("(compiled backend not built: "
                     "python -m repro.core.segmented.build)")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5,
                        help="best-of rounds per op (default 5)")
    parser.add_argument("--out", default=str(OUT_DIR /
                                             "kernels_micro.json"),
                        help="JSON results path")
    args = parser.parse_args(argv)
    results = run(args.rounds)
    print(render(results))
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out}")
    return results


if __name__ == "__main__":
    main()
