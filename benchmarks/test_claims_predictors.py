"""Section 6.1 predictor claims.

The paper quantifies its dispatch-stage predictors:

* the hit/miss predictor achieves >98% accuracy on hit predictions while
  covering >83% of all hits;
* about 35% of instructions have two outstanding operands produced in
  different chains (the LRP's target population);
* the left/right predictor removes all multiple-chain instructions.

This bench regenerates those numbers on our benchmark analogs.  Absolute
percentages depend on the workloads; the assertions check the claims'
*structure* (high hit-prediction accuracy, meaningful coverage, nonzero
two-chain population, LRP removing two-chain heads).
"""

import pytest

from repro.common.stats import ratio
from repro.harness.reporting import format_table

from benchmarks.conftest import BENCH_WORKLOADS, write_artifact

IQ_SIZE = 512


@pytest.fixture(scope="module")
def predictor_runs(runs):
    return {workload: {
        "hmp": runs.segmented(workload, IQ_SIZE, None, "hmp"),
        "base": runs.segmented(workload, IQ_SIZE, None, "base"),
        "lrp": runs.segmented(workload, IQ_SIZE, None, "lrp"),
    } for workload in BENCH_WORKLOADS}


def _hmp_accuracy(result):
    correct = result.stats.get("hmp.correct_hit_predictions", 0)
    wrong = result.stats.get("hmp.wrong_hit_predictions", 0)
    return ratio(correct, correct + wrong)


def _hmp_coverage(result):
    return ratio(result.stats.get("hmp.covered_hits", 0),
                 result.stats.get("hmp.actual_hits", 0))


def test_predictor_report(benchmark, predictor_runs):
    def render():
        rows = []
        for workload in sorted(predictor_runs):
            hmp = predictor_runs[workload]["hmp"]
            base = predictor_runs[workload]["base"]
            lrp = predictor_runs[workload]["lrp"]
            dispatched = base.stats.get("iq.dispatched", 1)
            two_chain = base.stats.get("iq.two_chain_instructions", 0)
            lrp_total = (lrp.stats.get("lrp.correct", 0)
                         + lrp.stats.get("lrp.wrong", 0))
            rows.append([
                workload,
                f"{100 * _hmp_accuracy(hmp):.1f}%",
                f"{100 * _hmp_coverage(hmp):.1f}%",
                f"{100 * two_chain / dispatched:.1f}%",
                f"{100 * ratio(lrp.stats.get('lrp.correct', 0), lrp_total):.1f}%",
            ])
        return format_table(
            ["benchmark", "HMP hit-pred acc", "HMP hit coverage",
             "two-chain insts", "LRP accuracy"],
            rows, title="Section 6.1: predictor quality")

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("claims_predictors.txt", report)
    print("\n" + report)
    assert "predictor quality" in report


def test_hmp_hit_predictions_are_high_confidence(benchmark, predictor_runs):
    def worst_accuracy():
        worst = 1.0
        for workload in predictor_runs:
            result = predictor_runs[workload]["hmp"]
            predictions = (result.stats.get("hmp.correct_hit_predictions", 0)
                           + result.stats.get("hmp.wrong_hit_predictions", 0))
            if predictions < 50:
                continue        # too few hit predictions to judge
            worst = min(worst, _hmp_accuracy(result))
        return worst

    value = benchmark.pedantic(worst_accuracy, rounds=1, iterations=1)
    # Paper: "over 98% accuracy for hit predictions".  The 4-bit
    # clear-on-miss counter is intentionally conservative.
    assert value > 0.9


def test_hmp_covers_hits_on_hitting_benchmarks(benchmark, predictor_runs):
    def best_coverage():
        return max(_hmp_coverage(predictor_runs[w]["hmp"])
                   for w in predictor_runs)

    value = benchmark.pedantic(best_coverage, rounds=1, iterations=1)
    # Paper: >83% of all hits covered on average across SPEC.  Our analogs
    # are short samples and several deliberately miss-dominated (delayed
    # hits train as misses), so require only that the friendliest
    # benchmark shows clearly-learned coverage.
    assert value > 0.3


def test_two_chain_population_exists(benchmark, predictor_runs):
    def fraction():
        fractions = []
        for workload in predictor_runs:
            base = predictor_runs[workload]["base"]
            dispatched = base.stats.get("iq.dispatched", 1)
            fractions.append(
                base.stats.get("iq.two_chain_instructions", 0) / dispatched)
        return max(fractions)

    value = benchmark.pedantic(fraction, rounds=1, iterations=1)
    # Paper: ~35% of instructions follow two chains in the base design.
    assert value > 0.10


def test_lrp_eliminates_multi_chain_heads(benchmark, predictor_runs):
    def chain_heads():
        pairs = []
        for workload in predictor_runs:
            base = predictor_runs[workload]["base"]
            lrp = predictor_runs[workload]["lrp"]
            pairs.append((base.stats.get("iq.chain_heads", 0),
                          lrp.stats.get("iq.chain_heads", 0),
                          base.stats.get("iq.two_chain_instructions", 0)))
        return pairs

    for base_heads, lrp_heads, two_chain in benchmark.pedantic(
            chain_heads, rounds=1, iterations=1):
        if two_chain > 100:
            # With the LRP, two-chain instructions no longer become heads.
            assert lrp_heads < base_heads


def test_hmp_reduction_limited_by_miss_rate_on_swim(benchmark,
                                                    predictor_runs):
    if "swim" not in predictor_runs:
        pytest.skip("swim not in bench set")

    def coverage():
        return _hmp_coverage(predictor_runs["swim"]["hmp"])

    value = benchmark.pedantic(coverage, rounds=1, iterations=1)
    # swim's loads nearly all miss, so there are few hits to cover and
    # the HMP cannot save many chains (paper section 6.1).
    hmp = predictor_runs["swim"]["hmp"]
    base = predictor_runs["swim"]["base"]
    assert hmp.chains_avg > 0.85 * base.chains_avg
