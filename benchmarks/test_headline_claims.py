"""Abstract / section-1 headline claims.

* "our segmented instruction queue with 512 entries and 128 chains
  improves performance by up to 69% over a 32-entry conventional
  instruction queue for SpecINT 2000 benchmarks, and up to 398% for
  SpecFP 2000 benchmarks";
* "achieves from 55% to 98% of the performance of a monolithic 512-entry
  queue";
* "average performance is 85% of an ideal queue for a 256-element queue,
  and 81% ... for a 512-element queue".

We check the *shape*: large FP gains over the 32-entry baseline, smaller
INT gains, and a segmented/ideal ratio distribution in the paper's band.
"""

import pytest

from repro.harness.reporting import format_table
from repro.workloads import FP_BENCHMARKS, INT_BENCHMARKS

from benchmarks.conftest import BENCH_WORKLOADS, FAST, write_artifact

SEG_SIZE = 512
CHAINS = 128


@pytest.fixture(scope="module")
def headline(runs):
    data = {}
    for workload in BENCH_WORKLOADS:
        conventional32 = runs.ideal(workload, 32)
        ideal512 = runs.ideal(workload, SEG_SIZE)
        seg = runs.segmented(workload, SEG_SIZE, CHAINS, "comb")
        data[workload] = {
            "gain_over_32": (seg.ipc / conventional32.ipc
                             if conventional32.ipc else 0.0),
            "fraction_of_ideal": (seg.ipc / ideal512.ipc
                                  if ideal512.ipc else 0.0),
            "seg_ipc": seg.ipc,
            "ideal512_ipc": ideal512.ipc,
            "conv32_ipc": conventional32.ipc,
        }
    return data


def test_headline_report(benchmark, headline):
    def render():
        rows = []
        for workload in sorted(headline):
            entry = headline[workload]
            group = "FP" if workload in FP_BENCHMARKS else "INT"
            rows.append([
                workload, group,
                round(entry["conv32_ipc"], 3),
                round(entry["ideal512_ipc"], 3),
                round(entry["seg_ipc"], 3),
                f"{100 * (entry['gain_over_32'] - 1):+.0f}%",
                f"{100 * entry['fraction_of_ideal']:.0f}%",
            ])
        return format_table(
            ["benchmark", "set", "conv-32 IPC", "ideal-512 IPC",
             "seg-512/128 IPC", "gain over conv-32", "% of ideal-512"],
            rows, title="Headline: segmented 512/128 vs 32-entry "
                        "conventional and ideal 512")

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("headline_claims.txt", report)
    print("\n" + report)
    assert "Headline" in report


def test_fp_benchmarks_show_large_gains(benchmark, headline):
    def best_fp_gain():
        gains = [headline[w]["gain_over_32"] for w in headline
                 if w in FP_BENCHMARKS]
        return max(gains) if gains else 0.0

    value = benchmark.pedantic(best_fp_gain, rounds=1, iterations=1)
    # Paper: up to +398% (i.e. 4.98x).  Require at least a 2x gain.
    assert value > 2.0


def test_int_gains_are_smaller_than_fp(benchmark, headline):
    def groups():
        fp = [headline[w]["gain_over_32"] for w in headline
              if w in FP_BENCHMARKS]
        integer = [headline[w]["gain_over_32"] for w in headline
                   if w in INT_BENCHMARKS]
        return fp, integer

    fp, integer = benchmark.pedantic(groups, rounds=1, iterations=1)
    if not fp or not integer:
        pytest.skip("need both FP and INT benchmarks")
    assert max(fp) > max(integer)


def test_fraction_of_ideal_in_paper_band(benchmark, headline):
    def fractions():
        return [headline[w]["fraction_of_ideal"] for w in headline]

    values = benchmark.pedantic(fractions, rounds=1, iterations=1)
    average = sum(values) / len(values)
    # Paper: 55%-98% per benchmark, 81% average at 512 entries.  Allow a
    # wider per-benchmark band for the synthetic analogs but require the
    # average to be in the right region.
    assert 0.55 <= average <= 1.02
    assert max(values) <= 1.05


@pytest.mark.skipif(FAST, reason="256-entry point skipped in fast mode")
def test_average_at_256_at_least_at_512(benchmark, runs, headline):
    def averages():
        values256 = []
        for workload in headline:
            ideal = runs.ideal(workload, 256)
            seg = runs.segmented(workload, 256, CHAINS, "comb")
            values256.append(seg.ipc / ideal.ipc if ideal.ipc else 0.0)
        values512 = [headline[w]["fraction_of_ideal"] for w in headline]
        return (sum(values256) / len(values256),
                sum(values512) / len(values512))

    avg256, avg512 = benchmark.pedantic(averages, rounds=1, iterations=1)
    # Paper: 85% at 256 entries vs 81% at 512 — the smaller queue tracks
    # the ideal a little more closely.
    assert avg256 >= avg512 - 0.05
