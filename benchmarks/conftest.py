"""Shared infrastructure for the reproduction benches.

Every bench regenerates one of the paper's tables or figures.  Runs are
cached per-session so Table 2 and Figure 2 (which share configurations)
pay for each simulation once.

Environment knobs:

* ``REPRO_BENCH_FAST=1``    — restrict to three benchmarks and smaller
  instruction budgets (smoke mode).
* ``REPRO_BENCH_WORKLOADS`` — comma-separated subset of benchmark names.
* ``REPRO_BENCH_JOBS``      — process-pool size for cold simulations.
* ``REPRO_BENCH_CACHE=0``   — disable the on-disk result cache (results
  otherwise persist across sessions under ``$REPRO_CACHE_DIR``, keyed by
  parameters and source version, so re-running a bench suite after an
  unrelated edit costs one disk read per cell).

Artifacts (the rendered tables) are written to ``benchmarks/out/``.
"""

import os
from pathlib import Path

import pytest

from repro.fabric import ExecutionConfig, Executor, RunSpec, raise_on_errors
from repro.harness import configs
from repro.harness.cache import ResultCache
from repro.workloads import WORKLOADS

OUT_DIR = Path(__file__).parent / "out"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")
_subset = os.environ.get("REPRO_BENCH_WORKLOADS", "")
if _subset:
    BENCH_WORKLOADS = [name.strip() for name in _subset.split(",") if name.strip()]
elif FAST:
    BENCH_WORKLOADS = ["swim", "twolf", "gcc"]
else:
    BENCH_WORKLOADS = sorted(WORKLOADS)

#: Instruction-budget multiplier (fast mode simulates shorter samples).
BUDGET_FACTOR = 0.4 if FAST else 1.0


class RunCache:
    """Memoizes (workload, config-key) -> RunResult for the session.

    Backed by the shared executor stack: cold cells run through the
    fabric's :class:`Executor` (``REPRO_BENCH_JOBS`` workers on the
    ``local-process`` backend) and land in the on-disk
    :class:`ResultCache`, so Table 2 and Figure 2 — which share
    configurations — pay for each simulation once per source version,
    not once per session.
    """

    def __init__(self) -> None:
        self._results = {}
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
        disk = ResultCache(
            enabled=os.environ.get("REPRO_BENCH_CACHE", "1") not in
            ("0", "no"))
        self._executor = Executor(ExecutionConfig(jobs=jobs, cache=disk))

    def get(self, workload: str, config_key: str, params_factory):
        key = (workload, config_key)
        if key not in self._results:
            workload_spec = WORKLOADS[workload]
            budget = max(
                2_000,
                int(workload_spec.default_instructions * BUDGET_FACTOR))
            spec = RunSpec(workload, params_factory(),
                           config_label=config_key,
                           max_instructions=budget)
            cells = self._executor.run_specs([spec])
            raise_on_errors(cells, "bench")
            self._results[key] = cells[0]
        return self._results[key]

    # -- the configurations the paper's evaluation uses ------------------
    def ideal(self, workload: str, size: int):
        return self.get(workload, f"ideal-{size}", lambda: configs.ideal(size))

    def segmented(self, workload: str, size: int, chains, variant: str):
        chain_key = "unl" if chains is None else str(chains)
        return self.get(
            workload, f"seg-{size}-{chain_key}-{variant}",
            lambda: configs.segmented(size, chains, variant))

    def prescheduled(self, workload: str, lines: int):
        return self.get(workload, f"presched-{lines}",
                        lambda: configs.prescheduled(lines))


@pytest.fixture(scope="session")
def runs():
    return RunCache()


def write_artifact(name: str, text: str) -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text + "\n")
    return path
