"""Figure 3: performance across IQ sizes for all benchmarks.

Regenerates the paper's Figure 3 — IPC curves over 32/64/128/256/512-entry
queues for the ideal IQ and the segmented IQ (combined predictors, 128 and
64 chains), plus the Michaud-Seznec prescheduler at its four published
sizes (8/24/56/120 lines = 128/320/704/1472 total slots) — and checks the
figure's qualitative claims:

* the ideal curve rises with IQ size for the FP benchmarks and is flat
  for gcc;
* the segmented curves track the ideal from below and also rise;
* the 128-entry segmented IQ beats every prescheduler size on most
  benchmarks (the paper: on all but vortex);
* the prescheduler barely improves with array size.
"""

import pytest

from repro.harness.reporting import ascii_series_plot, format_table

from benchmarks.conftest import BENCH_WORKLOADS, FAST, write_artifact

IQ_SIZES = (32, 64, 128) if FAST else (32, 64, 128, 256, 512)
PRESCHED_LINES = (8, 24) if FAST else (8, 24, 56, 120)


@pytest.fixture(scope="module")
def fig3_series(runs):
    """series[workload][config][size] = IPC."""
    series = {}
    for workload in BENCH_WORKLOADS:
        per = {"ideal": {}, "seg-128ch": {}, "seg-64ch": {}, "presched": {}}
        for size in IQ_SIZES:
            per["ideal"][size] = runs.ideal(workload, size).ipc
            per["seg-128ch"][size] = runs.segmented(
                workload, size, 128, "comb").ipc
            per["seg-64ch"][size] = runs.segmented(
                workload, size, 64, "comb").ipc
        for lines in PRESCHED_LINES:
            total = 32 + 12 * lines
            per["presched"][total] = runs.prescheduled(workload, lines).ipc
        series[workload] = per
    return series


def test_figure3_report(benchmark, fig3_series):
    def render():
        blocks = []
        for workload in sorted(fig3_series):
            blocks.append(ascii_series_plot(
                fig3_series[workload],
                title=f"Figure 3 ({workload}): IPC vs queue size"))
        rows = []
        for workload in sorted(fig3_series):
            per = fig3_series[workload]
            for config in ("ideal", "seg-128ch", "seg-64ch", "presched"):
                for size in sorted(per[config]):
                    rows.append([workload, config, size,
                                 round(per[config][size], 3)])
        blocks.append(format_table(
            ["benchmark", "config", "size", "IPC"], rows,
            title="Figure 3 raw data"))
        return "\n".join(blocks)

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("figure3_size_sweep.txt", report)
    print("\n" + report)
    assert "Figure 3" in report


def test_ideal_curves_rise_for_fp(benchmark, fig3_series):
    def gains():
        out = {}
        for workload in fig3_series:
            ideal = fig3_series[workload]["ideal"]
            out[workload] = ideal[max(IQ_SIZES)] / ideal[min(IQ_SIZES)]
        return out

    gain = benchmark.pedantic(gains, rounds=1, iterations=1)
    for workload in ("swim", "applu", "equake"):
        if workload in gain:
            assert gain[workload] > 1.5, workload


def test_gcc_is_flat(benchmark, fig3_series):
    if "gcc" not in fig3_series:
        pytest.skip("gcc not in bench set")

    def gain():
        ideal = fig3_series["gcc"]["ideal"]
        return ideal[max(IQ_SIZES)] / ideal[min(IQ_SIZES)]

    value = benchmark.pedantic(gain, rounds=1, iterations=1)
    # Paper: gcc "does not benefit from a larger IQ".
    assert value < 1.3


def test_segmented_tracks_ideal_from_below(benchmark, fig3_series):
    def violations():
        count = 0
        for workload in fig3_series:
            per = fig3_series[workload]
            for size in IQ_SIZES:
                if per["seg-128ch"][size] > per["ideal"][size] * 1.08:
                    count += 1
        return count

    assert benchmark.pedantic(violations, rounds=1, iterations=1) == 0


def test_segmented_scales_with_size(benchmark, fig3_series):
    def improvements():
        out = []
        for workload in ("swim", "applu", "equake", "ammp"):
            if workload not in fig3_series:
                continue
            seg = fig3_series[workload]["seg-128ch"]
            out.append(seg[max(IQ_SIZES)] / seg[min(IQ_SIZES)])
        return out

    gains = benchmark.pedantic(improvements, rounds=1, iterations=1)
    assert gains and sum(gains) / len(gains) > 1.3


def test_segmented_128_beats_prescheduler_on_most(benchmark, fig3_series):
    def wins():
        won = total = 0
        for workload in fig3_series:
            per = fig3_series[workload]
            seg128 = per["seg-128ch"].get(128)
            if seg128 is None:
                continue
            best_presched = max(per["presched"].values())
            total += 1
            if seg128 >= best_presched * 0.95:
                won += 1
        return won, total

    won, total = benchmark.pedantic(wins, rounds=1, iterations=1)
    # Paper: "Our 128-entry segmented IQ outperforms any
    # prescheduling-array size for every other benchmark [but vortex]."
    assert won >= total - 2


def test_prescheduler_insensitive_to_array_size(benchmark, fig3_series):
    def max_gain():
        worst = 1.0
        for workload in fig3_series:
            presched = fig3_series[workload]["presched"]
            sizes = sorted(presched)
            gain = (presched[sizes[-1]] / presched[sizes[0]]
                    if presched[sizes[0]] else 1.0)
            worst = max(worst, gain)
        return worst

    value = benchmark.pedantic(max_gain, rounds=1, iterations=1)
    # Paper: only vortex shows "any appreciable improvement" as the
    # prescheduling array grows.
    assert value < 1.6
