"""Figure 2: performance of 512-entry segmented IQ configurations
relative to the ideal 512-entry IQ.

Regenerates the paper's Figure 2 grid — {unlimited, 128, 64} chain wires x
{base, HMP, LRP, combined} — and checks its qualitative claims:

* segmented performance is a substantial fraction of ideal (paper: the
  base/unlimited average is within 16% of ideal; with finite chains it
  drops, and the predictors buy much of it back);
* restricting chains hurts: unlimited >= 128 >= 64 on average;
* adding the HMP on top of finite chains helps (paper: +9% at 128, +10%
  at 64 on average);
* benchmarks that use few chains (vortex, twolf) suffer least from the
  64-chain restriction.
"""

import pytest

from repro.harness.reporting import figure2_report, geometric_mean

from benchmarks.conftest import BENCH_WORKLOADS, write_artifact

VARIANTS = ("base", "hmp", "lrp", "comb")
CHAIN_SETTINGS = [(None, "unlimited"), (128, "128 chains"), (64, "64 chains")]
IQ_SIZE = 512


@pytest.fixture(scope="module")
def fig2_rel(runs):
    """rel[workload][chain_label][variant] = IPC / ideal-512 IPC."""
    rel = {}
    for workload in BENCH_WORKLOADS:
        ideal = runs.ideal(workload, IQ_SIZE)
        rel[workload] = {}
        for chains, label in CHAIN_SETTINGS:
            rel[workload][label] = {
                variant: (runs.segmented(workload, IQ_SIZE, chains,
                                         variant).ipc / ideal.ipc
                          if ideal.ipc else 0.0)
                for variant in VARIANTS}
    return rel


def _average(rel, label, variant):
    values = [rel[w][label][variant] for w in rel]
    return sum(values) / len(values)


def test_figure2_report(benchmark, fig2_rel):
    report = benchmark.pedantic(lambda: figure2_report(fig2_rel),
                                rounds=1, iterations=1)
    write_artifact("figure2_relative_performance.txt", report)
    print("\n" + report)
    assert "Figure 2" in report


def test_unlimited_chains_near_ideal(benchmark, fig2_rel):
    value = benchmark.pedantic(
        lambda: _average(fig2_rel, "unlimited", "base"),
        rounds=1, iterations=1)
    # Paper: base/unlimited averages 84% of the ideal queue.  Our analogs
    # land in the same band; require a healthy majority.
    assert value > 0.55


def test_restricting_chains_hurts(benchmark, fig2_rel):
    def averages():
        return [_average(fig2_rel, label, "base")
                for _, label in CHAIN_SETTINGS]

    unlimited, chains128, chains64 = benchmark.pedantic(
        averages, rounds=1, iterations=1)
    assert unlimited >= chains128 - 0.02
    assert chains128 >= chains64 - 0.02


def test_hmp_helps_with_finite_chains(benchmark, fig2_rel):
    def deltas():
        return [_average(fig2_rel, label, "hmp")
                - _average(fig2_rel, label, "base")
                for label in ("128 chains", "64 chains")]

    delta128, delta64 = benchmark.pedantic(deltas, rounds=1, iterations=1)
    # Paper: average +9% (128 chains) and +10% (64 chains).
    assert delta128 > -0.02
    assert delta64 > -0.02
    assert delta128 + delta64 > 0.0


def test_predictor_combination_not_much_worse_than_best(benchmark, fig2_rel):
    def comb_vs_best():
        label = "128 chains"
        comb = _average(fig2_rel, label, "comb")
        best = max(_average(fig2_rel, label, v) for v in VARIANTS)
        return comb, best

    comb, best = benchmark.pedantic(comb_vs_best, rounds=1, iterations=1)
    # Paper: HMP and LRP benefits are "mostly additive"; the combination
    # should be competitive with the best single variant.
    assert comb > best - 0.15


@pytest.mark.skipif(
    not {"vortex", "twolf"} <= set(BENCH_WORKLOADS)
    or not {"swim", "equake"} & set(BENCH_WORKLOADS),
    reason="needs low-chain and high-chain benchmarks")
def test_low_chain_benchmarks_suffer_least(benchmark, fig2_rel):
    def drop(workload):
        return (fig2_rel[workload]["unlimited"]["base"]
                - fig2_rel[workload]["64 chains"]["base"])

    def compare():
        low_users = [drop(w) for w in ("vortex", "twolf")]
        heavy = [drop(w) for w in ("swim", "equake") if w in fig2_rel]
        return max(low_users), max(heavy)

    low_drop, heavy_drop = benchmark.pedantic(compare, rounds=1, iterations=1)
    # Paper: "those requiring the fewest chains (vortex and twolf)
    # suffered less than those requiring more chains".
    assert low_drop <= heavy_drop + 0.05
