"""Table 2: chain usage for the 512-entry segmented IQ, unlimited chains.

Regenerates the paper's Table 2 — average and peak chain counts per
benchmark under the four dispatch-predictor variants (base / HMP / LRP /
combined) — and checks the paper's claims about it:

* both predictors reduce average chain usage, and their combination
  reduces it further (paper: -33% HMP, -58% LRP, -67% combined);
* swim sees little HMP benefit (its loads nearly all miss);
* peak usage can exceed sustainable levels because chains free only at
  head writeback.
"""

import pytest

from repro.harness.reporting import table2_report

from benchmarks.conftest import BENCH_WORKLOADS, write_artifact

VARIANTS = ("base", "hmp", "lrp", "comb")
IQ_SIZE = 512


@pytest.fixture(scope="module")
def table2_results(runs):
    results = {}
    for workload in BENCH_WORKLOADS:
        results[workload] = {
            variant: runs.segmented(workload, IQ_SIZE, None, variant)
            for variant in VARIANTS}
    return results


def test_table2_report(benchmark, runs, table2_results):
    def render():
        return table2_report(table2_results)

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("table2_chain_usage.txt", report)
    print("\n" + report)
    assert "Table 2" in report


def test_hmp_reduces_average_chain_usage(benchmark, table2_results):
    def averages():
        base = [table2_results[w]["base"].chains_avg for w in table2_results]
        hmp = [table2_results[w]["hmp"].chains_avg for w in table2_results]
        return sum(base) / len(base), sum(hmp) / len(hmp)

    base_avg, hmp_avg = benchmark.pedantic(averages, rounds=1, iterations=1)
    assert hmp_avg <= base_avg


def test_lrp_reduces_average_chain_usage(benchmark, table2_results):
    def averages():
        base = [table2_results[w]["base"].chains_avg for w in table2_results]
        lrp = [table2_results[w]["lrp"].chains_avg for w in table2_results]
        return sum(base) / len(base), sum(lrp) / len(lrp)

    base_avg, lrp_avg = benchmark.pedantic(averages, rounds=1, iterations=1)
    # Paper: LRP cuts average chain count by 58%.
    assert lrp_avg < 0.9 * base_avg


def test_combined_reduces_most(benchmark, table2_results):
    def averages():
        out = {}
        for variant in VARIANTS:
            values = [table2_results[w][variant].chains_avg
                      for w in table2_results]
            out[variant] = sum(values) / len(values)
        return out

    avg = benchmark.pedantic(averages, rounds=1, iterations=1)
    # Paper: combined saves more than either predictor alone (67% vs
    # 33%/58%); allow slack but require it to be the minimum.
    assert avg["comb"] <= avg["hmp"] + 1e-9
    assert avg["comb"] <= avg["lrp"] + 1e-9


@pytest.mark.skipif("swim" not in BENCH_WORKLOADS,
                    reason="swim not in bench set")
def test_swim_gets_little_hmp_benefit(benchmark, table2_results):
    def ratio():
        base = table2_results["swim"]["base"].chains_avg
        hmp = table2_results["swim"]["hmp"].chains_avg
        return hmp / base if base else 1.0

    value = benchmark.pedantic(ratio, rounds=1, iterations=1)
    # Paper: "swim sees only a negligible decrease in chains because over
    # 90% of its loads miss in the L1 cache."
    assert value > 0.85


def test_peak_exceeds_average(benchmark, table2_results):
    def check():
        return all(table2_results[w][v].chains_peak
                   >= table2_results[w][v].chains_avg
                   for w in table2_results for v in VARIANTS)

    assert benchmark.pedantic(check, rounds=1, iterations=1)
