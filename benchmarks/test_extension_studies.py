"""Studies of the section-7 extensions (our additions; see DESIGN.md §6b).

Not paper figures — these quantify the future-work directions the paper
sketches, using the same workloads and harness as the reproduction:

* SMT co-scheduling throughput (shared segmented IQ vs ideal IQ);
* clustered execution with chain vs balance steering;
* dynamic segment resizing's energy/performance trade.
"""

import dataclasses

import pytest

from repro.common import ProcessorParams, segmented_iq_params
from repro import api
from repro.harness import configs
from repro.harness.energy import EnergyModel, energy_per_instruction
from repro.harness.reporting import format_table
from repro.isa import execute
from repro.pipeline import SMTProcessor
from repro.workloads import WORKLOADS

from benchmarks.conftest import BENCH_WORKLOADS, BUDGET_FACTOR, write_artifact

SMT_PAIRS = [("swim", "twolf"), ("equake", "vortex")]


def _budget(name):
    return max(2_000, int(WORKLOADS[name].default_instructions
                          * BUDGET_FACTOR * 0.6))


def run_smt(names, params):
    programs = [WORKLOADS[name].build(1) for name in names]
    streams = [execute(program, max_instructions=_budget(name))
               for name, program in zip(names, programs)]
    processor = SMTProcessor(params, streams)
    processor.warm_code(programs)
    processor.warm_data(programs,
                        threads=[i for i, name in enumerate(names)
                                 if WORKLOADS[name].warm_data])
    processor.run(max_cycles=5_000_000)
    return processor


def smt_pairs():
    return [(a, b) for a, b in SMT_PAIRS
            if a in BENCH_WORKLOADS and b in BENCH_WORKLOADS] or \
        [(BENCH_WORKLOADS[0], BENCH_WORKLOADS[-1])]


def test_smt_throughput_study(benchmark):
    def render():
        rows = []
        for pair in smt_pairs():
            for design, params in (
                    ("segmented-512/128", configs.segmented(512, 128,
                                                            "comb")),
                    ("ideal-512", configs.ideal(512))):
                serial = sum(run_smt([name], params).cycle for name in pair)
                smt = run_smt(list(pair), params)
                rows.append(["+".join(pair), design,
                             round(smt.ipc, 3),
                             f"{serial / smt.cycle:.2f}x"])
        return format_table(
            ["pair", "design", "SMT IPC", "speedup vs serial"],
            rows, title="SMT co-scheduling (section 7 study)")

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("smt_throughput.txt", report)
    print("\n" + report)
    # Co-scheduling must beat running the pair serially on every design.
    for line in report.splitlines()[3:]:
        speedup = float(line.split()[-1].rstrip("x"))
        assert speedup > 1.0


def test_clustering_study(benchmark):
    workloads = [w for w in ("mgrid", "swim") if w in BENCH_WORKLOADS] \
        or BENCH_WORKLOADS[:1]

    def render():
        rows = []
        for workload in workloads:
            budget = _budget(workload)
            base = api.run(configs.segmented(512, 128, "comb"), workload,
                                max_instructions=budget)
            row = [workload, round(base.ipc, 3)]
            for steering in ("balance", "chain"):
                params = configs.segmented(512, 128, "comb").replace(
                    clusters=2, cluster_steering=steering)
                result = api.run(params, workload,
                                      max_instructions=budget)
                row.extend([round(result.ipc, 3),
                            int(result.stats.get(
                                "clusters.cross_forwards", 0))])
            rows.append(row)
        return format_table(
            ["benchmark", "1-cluster IPC", "balance IPC", "balance xfwd",
             "chain IPC", "chain xfwd"],
            rows, title="Clustered execution: chain vs balance steering")

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("clustering_study.txt", report)
    print("\n" + report)
    # Chain steering must cut cross-cluster forwarding dramatically.
    for row in report.splitlines()[3:]:
        cells = row.split()
        balance_xfwd, chain_xfwd = int(cells[3]), int(cells[5])
        assert chain_xfwd < balance_xfwd / 5 or balance_xfwd < 100


def test_resize_energy_study(benchmark):
    workloads = [w for w in ("gcc", "twolf", "swim")
                 if w in BENCH_WORKLOADS] or BENCH_WORKLOADS[:1]

    def render():
        model = EnergyModel()
        rows = []
        for workload in workloads:
            budget = _budget(workload)
            fixed_iq = segmented_iq_params(512, max_chains=128)
            gated_iq = dataclasses.replace(fixed_iq, dynamic_resize=True,
                                           resize_interval=100)
            fixed = api.run(ProcessorParams().replace(iq=fixed_iq), workload,
                                 max_instructions=budget)
            gated = api.run(ProcessorParams().replace(iq=gated_iq), workload,
                                 max_instructions=budget)
            fixed_epi = energy_per_instruction(
                model.estimate(fixed.stats), fixed.instructions)
            gated_epi = energy_per_instruction(
                model.estimate(gated.stats), gated.instructions)
            rows.append([workload, round(fixed.ipc, 3), round(gated.ipc, 3),
                         round(fixed_epi, 2), round(gated_epi, 2)])
        return format_table(
            ["benchmark", "fixed IPC", "gated IPC", "fixed EPI",
             "gated EPI"],
            rows, title="Dynamic segment resizing: energy proxy per "
                        "instruction")

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("resize_energy_study.txt", report)
    print("\n" + report)
    for row in report.splitlines()[3:]:
        cells = row.split()
        fixed_ipc, gated_ipc = float(cells[1]), float(cells[2])
        fixed_epi, gated_epi = float(cells[3]), float(cells[4])
        assert gated_ipc > 0.85 * fixed_ipc     # tiny performance cost
        assert gated_epi <= fixed_epi + 0.01    # never costs energy