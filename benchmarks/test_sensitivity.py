"""Sensitivity of the paper's conclusions to substrate parameters.

The paper's evaluation fixes one memory latency (100 cycles).  These
benches vary the substrate and check that the *conclusions* — segmented
tracks ideal, larger windows help memory-bound code — survive, which is
the strongest evidence the reproduction isn't tuned to one lucky point.
"""

import dataclasses

import pytest

from repro.common import MemoryParams
from repro import api
from repro.harness import configs
from repro.harness.reporting import format_table

from benchmarks.conftest import BENCH_WORKLOADS, write_artifact

WORKLOAD = "swim" if "swim" in BENCH_WORKLOADS else BENCH_WORKLOADS[0]
LATENCIES = (50, 100, 200)


def with_memory_latency(params, latency):
    memory = dataclasses.replace(params.memory,
                                 main_memory_latency=latency)
    return params.replace(memory=memory)


def test_memory_latency_sweep(benchmark):
    def render():
        rows = []
        ratios = []
        for latency in LATENCIES:
            ideal = api.run(
                with_memory_latency(configs.ideal(512), latency), WORKLOAD,
                config_label=f"ideal-mem{latency}",
                max_instructions=10_000)
            seg = api.run(
                with_memory_latency(configs.segmented(512, 128, "comb"),
                                    latency),
                WORKLOAD,
                config_label=f"seg-mem{latency}",
                max_instructions=10_000)
            ratio = seg.ipc / ideal.ipc if ideal.ipc else 0.0
            ratios.append(ratio)
            rows.append([latency, round(ideal.ipc, 3), round(seg.ipc, 3),
                         f"{100 * ratio:.0f}%"])
        report = format_table(
            ["memory latency", "ideal-512 IPC", "seg-512/128 IPC",
             "seg/ideal"],
            rows, title=f"Sensitivity: memory latency ({WORKLOAD})")
        return report, ratios

    report, ratios = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("sensitivity_memory_latency.txt", report)
    print("\n" + report)
    # The segmented design must stay a healthy fraction of ideal at every
    # latency; the fraction shrinks as latency grows (the ideal IQ's
    # issued loads vacate the queue, so its effective window is the ROB,
    # while the segmented queue's unissued inventory is physically
    # bounded) — a real scaling limit worth knowing about.
    assert min(ratios) > 0.35
    assert ratios == sorted(ratios, reverse=True)


def test_window_benefit_grows_with_latency(benchmark):
    def gains():
        out = []
        for latency in (50, 200):
            small = api.run(
                with_memory_latency(configs.ideal(32), latency), WORKLOAD,
                config_label=f"ideal32-mem{latency}",
                max_instructions=10_000)
            large = api.run(
                with_memory_latency(configs.ideal(512), latency), WORKLOAD,
                config_label=f"ideal512-mem{latency}",
                max_instructions=10_000)
            out.append(large.ipc / small.ipc if small.ipc else 0.0)
        return out

    gain50, gain200 = benchmark.pedantic(gains, rounds=1, iterations=1)
    # The paper's motivation: the longer the memory latency, the more a
    # big window buys.
    assert gain200 > gain50 * 0.95


def test_segment_size_grid(benchmark):
    def render():
        rows = []
        for segment_size in (16, 32, 64):
            result = api.run(
                configs.segmented(512, 128, "comb",
                                  segment_size=segment_size),
                WORKLOAD, config_label=f"seg{segment_size}",
                max_instructions=10_000)
            rows.append([segment_size, 512 // segment_size,
                         round(result.ipc, 3)])
        return format_table(
            ["segment size", "segments", "IPC"],
            rows, title=f"Sensitivity: segment size at 512 entries "
                        f"({WORKLOAD})")

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("sensitivity_segment_size.txt", report)
    print("\n" + report)
    # IPC must increase with segment size (fewer promotion stages); the
    # paper picks 32 because segment size sets the *clock*, which an
    # IPC-only model does not charge.
    values = [float(line.split()[-1]) for line in report.splitlines()[3:]]
    assert values == sorted(values)