"""Ablations of the design choices the paper calls out (section 4).

Not a paper figure, but DESIGN.md's per-experiment index includes these
studies because sections 4.1-4.5 argue for each enhancement:

* instruction pushdown (4.1) — utilization under long-delay chains;
* segment bypassing (4.2) — pipeline-depth penalty on short programs;
* segment size — the cycle-time/IPC trade at fixed total capacity;
* deadlock recovery (4.5) — activity exists but is rare.
"""

import pytest

from repro.common import ProcessorParams
from repro import api
from repro.harness import configs
from repro.harness.reporting import format_table
from repro.workloads import WORKLOADS

from benchmarks.conftest import BENCH_WORKLOADS, write_artifact

ABLATION_WORKLOADS = [w for w in ("swim", "applu", "twolf")
                      if w in BENCH_WORKLOADS] or BENCH_WORKLOADS[:1]


def run_seg(workload, **seg_kwargs):
    params = configs.segmented(512, 128, "comb", **seg_kwargs)
    return api.run(params, workload,
                        config_label=str(sorted(seg_kwargs.items())))


def test_ablation_report(benchmark):
    def render():
        rows = []
        for workload in ABLATION_WORKLOADS:
            base = run_seg(workload)
            no_push = run_seg(workload, pushdown=False)
            no_bypass = run_seg(workload, bypass=False)
            seg16 = run_seg(workload, segment_size=16)
            seg64 = run_seg(workload, segment_size=64)
            rows.append([workload, round(base.ipc, 3),
                         round(no_push.ipc, 3), round(no_bypass.ipc, 3),
                         round(seg16.ipc, 3), round(seg64.ipc, 3)])
        return format_table(
            ["benchmark", "full", "no pushdown", "no bypass",
             "16-entry segs", "64-entry segs"],
            rows, title="Ablations: segmented IQ design choices (512 "
                        "entries, 128 chains, comb)")

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("ablations.txt", report)
    print("\n" + report)
    assert "Ablations" in report


def test_pushdown_helps_streaming(benchmark):
    workload = ABLATION_WORKLOADS[0]

    def delta():
        return (run_seg(workload).ipc,
                run_seg(workload, pushdown=False).ipc)

    with_push, without = benchmark.pedantic(delta, rounds=1, iterations=1)
    # Paper 4.1: pushdown prevents the top segment from stalling dispatch.
    assert with_push >= without * 0.95


def test_bypass_helps_low_occupancy_code(benchmark):
    workload = "twolf" if "twolf" in BENCH_WORKLOADS else ABLATION_WORKLOADS[0]

    def delta():
        return (run_seg(workload).ipc, run_seg(workload, bypass=False).ipc)

    with_bypass, without = benchmark.pedantic(delta, rounds=1, iterations=1)
    # Paper 4.2/6.1: bypass moves instructions past empty segments,
    # cutting the effective pipeline depth for low-occupancy benchmarks.
    assert with_bypass >= without * 0.98


def test_deadlock_recovery_is_rare(benchmark):
    def rates():
        out = []
        for workload in ABLATION_WORKLOADS:
            result = run_seg(workload)
            out.append(result.stats.get("iq.deadlock_recoveries", 0)
                       / max(1, result.cycles))
        return out

    values = benchmark.pedantic(rates, rounds=1, iterations=1)
    # Paper 4.5: deadlock occurs in ~0.05% of cycles.  Allow an order of
    # magnitude of slack for the synthetic analogs.
    assert max(values) < 0.05


def test_pushdown_vs_adaptive_thresholds(benchmark):
    """Section 4.1 head-to-head: the paper chose pushdown over adaptive
    thresholds for complexity reasons.  This ablation implements both and
    checks the choice was sound: pushdown captures most of the benefit."""
    import dataclasses
    from repro.common import segmented_iq_params

    def config(pushdown, adaptive):
        iq = dataclasses.replace(
            segmented_iq_params(512, max_chains=128, pushdown=pushdown),
            adaptive_thresholds=adaptive)
        return ProcessorParams().replace(iq=iq)

    def render():
        rows = []
        for workload in ABLATION_WORKLOADS:
            ipcs = {}
            for label, pushdown, adaptive in (
                    ("neither", False, False), ("pushdown", True, False),
                    ("adaptive", False, True), ("both", True, True)):
                result = api.run(config(pushdown, adaptive), workload,
                                      config_label=f"util-{label}")
                ipcs[label] = result.ipc
            rows.append([workload] + [round(ipcs[k], 3) for k in
                                      ("neither", "pushdown", "adaptive",
                                       "both")])
        return format_table(
            ["benchmark", "neither", "pushdown (paper)", "adaptive",
             "both"],
            rows, title="Section 4.1: pushdown vs adaptive thresholds")

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("pushdown_vs_adaptive.txt", report)
    print("\n" + report)
    for row in report.splitlines()[3:]:
        cells = row.split()
        neither, pushdown = float(cells[1]), float(cells[2])
        adaptive, both = float(cells[3]), float(cells[4])
        # The paper's choice must dominate the declined alternative on at
        # least parity terms, and combining must not hurt.
        assert pushdown >= adaptive * 0.9
        assert both >= pushdown * 0.9


def test_memory_disambiguation_policies(benchmark):
    """Conservative (the paper) vs store sets vs oracle disambiguation.

    Section 5 notes the conservative LSQ could be augmented with store
    sets; this ablation quantifies what the conservative rule costs.
    """
    # ammp's read-modify-write force updates make disambiguation binding;
    # the streaming benchmarks barely notice it.
    memdep_workloads = [w for w in ("ammp", "equake")
                        if w in BENCH_WORKLOADS] + ABLATION_WORKLOADS[:1]

    def render():
        rows = []
        for workload in memdep_workloads:
            ipcs = []
            for policy in ("conservative", "store_sets", "oracle"):
                params = configs.segmented(512, 128, "comb").replace(
                    mem_dep_policy=policy)
                result = api.run(params, workload,
                                      config_label=f"memdep-{policy}")
                ipcs.append(round(result.ipc, 3))
            rows.append([workload] + ipcs)
        return format_table(
            ["benchmark", "conservative", "store sets", "oracle"],
            rows, title="Memory disambiguation policies (segmented "
                        "512/128, comb)")

    report = benchmark.pedantic(render, rounds=1, iterations=1)
    write_artifact("memdep_policies.txt", report)
    print("\n" + report)
    # The oracle can only help; the orderings must hold loosely.
    for row in report.splitlines()[3:]:
        cells = row.split()
        conservative, oracle = float(cells[1]), float(cells[3])
        assert oracle >= conservative * 0.98


def test_smaller_segments_do_not_collapse(benchmark):
    workload = ABLATION_WORKLOADS[0]

    def pair():
        return (run_seg(workload, segment_size=16).ipc,
                run_seg(workload).ipc)

    ipc16, ipc32 = benchmark.pedantic(pair, rounds=1, iterations=1)
    # 16-entry segments double the promotion pipeline depth; IPC drops
    # but the design keeps working (the cycle-time win is the point).
    assert ipc16 > 0.4 * ipc32
